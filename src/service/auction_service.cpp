#include "service/auction_service.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>

namespace sfl::service {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// poll_once ticks the listen fd sits out after EMFILE/ENFILE (~1 s at the
/// default 20 ms poll timeout) — long enough for fds to be released,
/// short enough that recovery is prompt.
constexpr int kAcceptCooldownTicks = 50;

}  // namespace

AuctionService::AuctionService(AuctionServiceConfig config)
    : config_(std::move(config)) {
  // Fail unknown mechanism keys at construction, not at the first bid —
  // and before any fd exists, so the throw cannot leak a socket.
  (void)build_market_mechanism(config_.engine);
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error(std::string("socket(): ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("bind(127.0.0.1:" +
                             std::to_string(config_.port) + "): " + why);
  }
  if (::listen(listen_fd_, 64) < 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("listen(): " + why);
  }
  set_nonblocking(listen_fd_);
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);
  }

  // The config echo every connection receives first: encoded once, the
  // round-geometry knobs a client must match for rounds to ever clear.
  ServerHello hello;
  hello.bids_per_round = config_.engine.bids_per_round;
  hello.max_winners = config_.engine.max_winners;
  hello.max_pending_rounds = config_.max_pending_rounds;
  hello.mechanism = config_.engine.mechanism;
  encode(hello, hello_frame_);
}

AuctionService::~AuctionService() { stop(); }

void AuctionService::start() {
  if (thread_.joinable()) return;
  if (listen_fd_ < 0) {
    throw std::runtime_error(
        "AuctionService: cannot restart after stop() (socket closed)");
  }
  stopping_.store(false);
  thread_ = std::thread([this] { run(); });
}

void AuctionService::stop() {
  stopping_.store(true);
  if (thread_.joinable()) thread_.join();
  for (auto& [id, conn] : connections_) {
    if (conn.fd >= 0) ::close(conn.fd);
  }
  connections_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void AuctionService::run() {
  while (!stopping_.load()) {
    poll_once(config_.poll_timeout_ms);
  }
}

ServiceStats AuctionService::stats() const noexcept {
  ServiceStats s;
  s.connections_accepted = connections_accepted_.load();
  s.connections_dropped = connections_dropped_.load();
  s.protocol_errors = protocol_errors_.load();
  s.frames_received = frames_received_.load();
  s.bids_received = bids_received_.load();
  s.rounds_cleared = rounds_cleared_.load();
  return s;
}

void AuctionService::poll_once(int timeout_ms) {
  std::vector<pollfd> pfds;
  std::vector<std::uint64_t> ids;
  pfds.reserve(connections_.size() + 1);
  ids.reserve(connections_.size() + 1);
  // While cooling down after fd exhaustion the listen fd stays in the set
  // but asks for no events: accept() would only fail again, and a
  // perpetually POLLIN-ready queue would turn the loop into a busy spin.
  short listen_events = POLLIN;
  if (accept_cooldown_ticks_ > 0) {
    --accept_cooldown_ticks_;
    listen_events = 0;
  }
  pfds.push_back(
      pollfd{.fd = listen_fd_, .events = listen_events, .revents = 0});
  ids.push_back(0);  // never a connection id
  for (auto& [id, conn] : connections_) {
    short events = POLLIN;
    if (conn.out_offset < conn.out.size()) events |= POLLOUT;
    pfds.push_back(pollfd{.fd = conn.fd, .events = events, .revents = 0});
    ids.push_back(id);
  }

  const int ready = ::poll(pfds.data(), pfds.size(), timeout_ms);
  if (ready <= 0) return;

  if ((pfds[0].revents & POLLIN) != 0) accept_ready();
  for (std::size_t i = 1; i < pfds.size(); ++i) {
    const auto it = connections_.find(ids[i]);
    if (it == connections_.end() || it->second.dead) continue;
    Connection& conn = it->second;
    if ((pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
      read_ready(conn);
    }
    if (!conn.dead && (pfds[i].revents & POLLOUT) != 0) {
      flush_writes(conn);
    }
  }
  clear_tick_markets();
  reap_dead_connections();
}

void AuctionService::accept_ready() {
  // Drain the accept queue; the listen socket is non-blocking.
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
          errno == ENOMEM) {
        // Out of fds/buffers: nothing we can accept until something closes,
        // so stop watching the listen fd for a while instead of spinning.
        accept_cooldown_ticks_ = kAcceptCooldownTicks;
      }
      return;
    }
    set_nonblocking(fd);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    Connection conn;
    conn.id = next_connection_id_++;
    conn.fd = fd;
    conn.assembler = FrameAssembler(config_.max_frame_bytes);
    const std::uint64_t id = conn.id;
    const auto [it, inserted] = connections_.emplace(id, std::move(conn));
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    // Knob-mismatch fail-fast: the config echo is the FIRST frame on every
    // connection, so a client expecting a different round geometry learns
    // it immediately instead of hanging on rounds that never clear.
    queue_frame(it->second, hello_frame_);
  }
}

void AuctionService::read_ready(Connection& conn) {
  std::byte buffer[4096];
  // Bounded per-tick read budget so one firehose client cannot starve the
  // rest of the poll cycle.
  for (int chunk = 0; chunk < 16 && !conn.dead; ++chunk) {
    const ssize_t got = ::recv(conn.fd, buffer, sizeof(buffer), 0);
    if (got == 0) {
      // EOF — also the mid-frame-disconnect case: whatever partial frame
      // the assembler holds is simply discarded with the connection.
      drop_connection(conn, /*protocol_error=*/false);
      return;
    }
    if (got < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      drop_connection(conn, /*protocol_error=*/false);
      return;
    }
    if (!conn.assembler.feed(
            std::span<const std::byte>(buffer, static_cast<std::size_t>(got)))) {
      drop_connection(conn, /*protocol_error=*/true);
      return;
    }
    while (!conn.dead && conn.assembler.next_frame(frame_scratch_)) {
      frames_received_.fetch_add(1, std::memory_order_relaxed);
      if (!handle_frame(conn, frame_scratch_)) {
        drop_connection(conn, /*protocol_error=*/true);
        return;
      }
    }
    if (conn.assembler.condemned()) {
      drop_connection(conn, /*protocol_error=*/true);
      return;
    }
  }
}

bool AuctionService::handle_frame(Connection& conn, const Frame& frame) {
  // Clients may only ever send bid slates; any other (even well-formed)
  // frame type on a client connection is a protocol violation.
  try {
    decode(frame, submit_scratch_);
  } catch (const WireError&) {
    return false;
  }
  // Transactional slate application: every row is validated against the
  // pre-frame state first, so a rejected frame (false return, connection
  // dropped) leaves no partial rows behind in any bucket, and clearing
  // only runs once the whole slate is in.
  frame_slots_.clear();
  frame_new_markets_.clear();
  frame_touched_markets_.clear();
  frame_row_accepted_.assign(submit_scratch_.row_count(), 0);
  for (std::size_t i = 0; i < submit_scratch_.row_count(); ++i) {
    const std::uint64_t market_id = submit_scratch_.markets[i];
    const std::uint64_t round = submit_scratch_.rounds[i];
    switch (validate_bid(market_id, round, submit_scratch_.client)) {
      case BidDisposition::kViolation:
        return false;
      case BidDisposition::kIgnore:
        // Benign race lost (full bucket / market cap): an honest client
        // cannot foresee these, so the row is skipped, never punished.
        break;
      case BidDisposition::kAccept:
        frame_row_accepted_[i] = 1;
        frame_slots_.emplace_back(market_id, round);
        if (markets_.find(market_id) == markets_.end()) {
          bool known = false;
          for (const std::uint64_t m : frame_new_markets_) {
            if (m == market_id) known = true;
          }
          if (!known) frame_new_markets_.push_back(market_id);
        }
        break;
    }
  }
  for (std::size_t i = 0; i < submit_scratch_.row_count(); ++i) {
    if (frame_row_accepted_[i] == 0) continue;
    BidRow row;
    row.client = submit_scratch_.client;
    row.value = submit_scratch_.values[i];
    row.bid = submit_scratch_.bids[i];
    row.energy_cost = submit_scratch_.energy_costs[i];
    apply_bid(conn, submit_scratch_.markets[i], submit_scratch_.rounds[i],
              row);
    bids_received_.fetch_add(1, std::memory_order_relaxed);
  }
  // Clearing is deferred to the end of the poll tick (clear_tick_markets):
  // every market touched by ANY frame this tick clears through one
  // mega-batch engine pass instead of one pass per frame.
  tick_ready_markets_.insert(tick_ready_markets_.end(),
                             frame_touched_markets_.begin(),
                             frame_touched_markets_.end());
  return true;
}

AuctionService::BidDisposition AuctionService::validate_bid(
    std::uint64_t market_id, std::uint64_t round, std::uint64_t client) const {
  // The whole slate carries one client id, so a second row naming the same
  // (market, round) would double-bid that client into one bucket. The
  // sender controls its own slate — this is a violation, not a race.
  for (const auto& [m, r] : frame_slots_) {
    if (m == market_id && r == round) return BidDisposition::kViolation;
  }
  const auto market_it = markets_.find(market_id);
  if (market_it == markets_.end()) {
    bool created_by_frame = false;
    for (const std::uint64_t m : frame_new_markets_) {
      if (m == market_id) created_by_frame = true;
    }
    if (!created_by_frame &&
        markets_.size() + frame_new_markets_.size() >= config_.max_markets) {
      // Market cap: a race against other clients, not misbehavior.
      return BidDisposition::kIgnore;
    }
    // A market that does not exist yet starts at round 0.
    if (round >= config_.max_pending_rounds) return BidDisposition::kViolation;
    return BidDisposition::kAccept;
  }
  const MarketState& market = market_it->second;

  // Stale (already-cleared) rounds and rounds beyond the pending window are
  // violations: they can never clear correctly, and the window bound is
  // what keeps a hostile round pattern from growing server state without
  // limit.
  if (round < market.next_round) return BidDisposition::kViolation;
  if (round >= market.next_round + config_.max_pending_rounds) {
    return BidDisposition::kViolation;
  }

  const auto bucket_it = market.pending.find(round);
  if (bucket_it != market.pending.end()) {
    const Bucket& bucket = bucket_it->second;
    if (bucket.rows.size() >= config_.engine.bids_per_round) {
      // Full but not yet clearable (an earlier round is still open): the
      // bid lost a race it could not observe.
      return BidDisposition::kIgnore;
    }
    for (const BidRow& existing : bucket.rows) {
      if (existing.client == client) {
        return BidDisposition::kViolation;  // one bid per client per round
      }
    }
  }
  return BidDisposition::kAccept;
}

void AuctionService::apply_bid(const Connection& conn, std::uint64_t market_id,
                               std::uint64_t round, const BidRow& row) {
  auto market_it = markets_.find(market_id);
  if (market_it == markets_.end()) {
    MarketState market;
    market.mechanism = build_market_mechanism(config_.engine);
    market_it = markets_.emplace(market_id, std::move(market)).first;
  }
  Bucket& bucket = market_it->second.pending[round];
  bucket.rows.push_back(row);
  bucket.row_owners.push_back(conn.id);
  bool known_contributor = false;
  for (const std::uint64_t id : bucket.contributor_ids) {
    if (id == conn.id) {
      known_contributor = true;
      break;
    }
  }
  if (!known_contributor) bucket.contributor_ids.push_back(conn.id);

  bool touched = false;
  for (const std::uint64_t id : frame_touched_markets_) {
    if (id == market_id) touched = true;
  }
  if (!touched) frame_touched_markets_.push_back(market_id);
}

void AuctionService::clear_tick_markets() {
  // Strict round order per market, one mega-batch engine pass per
  // iteration: each touched market contributes at most its next_round (when
  // that bucket is full) to a clear_market_rounds batch of DISTINCT
  // markets; a cleared round that unblocks an already-full successor
  // re-queues its market for the next iteration.
  while (!tick_ready_markets_.empty()) {
    std::sort(tick_ready_markets_.begin(), tick_ready_markets_.end());
    tick_ready_markets_.erase(
        std::unique(tick_ready_markets_.begin(), tick_ready_markets_.end()),
        tick_ready_markets_.end());

    batch_buckets_.clear();
    batch_market_ids_.clear();
    for (const std::uint64_t market_id : tick_ready_markets_) {
      const auto market_it = markets_.find(market_id);
      if (market_it == markets_.end()) continue;
      MarketState& market = market_it->second;
      // Fullness is re-checked at clear time: a connection dropped later in
      // the tick may have purged rows from a bucket that was full when its
      // frame arrived.
      const auto bucket_it = market.pending.find(market.next_round);
      if (bucket_it == market.pending.end() ||
          bucket_it->second.rows.size() < config_.engine.bids_per_round) {
        continue;
      }
      batch_buckets_.push_back(std::move(bucket_it->second));
      market.pending.erase(bucket_it);
      batch_market_ids_.push_back(market_id);
    }
    tick_ready_markets_.clear();
    if (batch_buckets_.empty()) return;

    // Requests are built only after batch_buckets_ stops growing — its
    // reallocation would invalidate the row pointers.
    batch_requests_.clear();
    for (std::size_t j = 0; j < batch_buckets_.size(); ++j) {
      MarketState& market = markets_.find(batch_market_ids_[j])->second;
      batch_requests_.push_back(
          MarketRoundRequest{.mechanism = market.mechanism.get(),
                             .round = market.next_round,
                             .rows = &batch_buckets_[j].rows,
                             .batch = &market.batch,
                             .result = &market.result});
    }
    clear_market_rounds(clearer_, batch_requests_, config_.engine);

    for (std::size_t j = 0; j < batch_buckets_.size(); ++j) {
      const std::uint64_t market_id = batch_market_ids_[j];
      MarketState& market = markets_.find(market_id)->second;
      const std::uint64_t round = market.next_round;
      market.next_round = round + 1;
      rounds_cleared_.fetch_add(1, std::memory_order_relaxed);

      result_scratch_.market = market_id;
      result_scratch_.round = round;
      result_scratch_.winners = market.result.winners;
      result_scratch_.payments = market.result.payments;

      SettlementAck ack;
      ack.market = market_id;
      ack.round = round;
      ack.total_payment = market.result.total_payment();
      ack.winner_count = market.result.winners.size();

      // Contributors are looked up by connection id, never fd: ids are
      // never reused, so a contributor that disconnected (its fd possibly
      // already handed to a new, unrelated client) simply fails the lookup
      // instead of receiving someone else's results.
      for (const std::uint64_t conn_id : batch_buckets_[j].contributor_ids) {
        const auto conn_it = connections_.find(conn_id);
        if (conn_it == connections_.end() || conn_it->second.dead) continue;
        encode(result_scratch_, encode_scratch_);
        queue_frame(conn_it->second, encode_scratch_);
        encode(ack, encode_scratch_);
        queue_frame(conn_it->second, encode_scratch_);
      }
      tick_ready_markets_.push_back(market_id);  // cascade check next pass
    }
  }
}

void AuctionService::queue_frame(Connection& conn, const Frame& frame) {
  if (conn.dead) return;
  const std::size_t queued = conn.out.size() - conn.out_offset;
  if (queued + frame.size() > config_.max_out_bytes) {
    // The peer stopped reading; shedding it beats unbounded buffering.
    drop_connection(conn, /*protocol_error=*/true);
    return;
  }
  if (conn.out_offset > 0 && conn.out_offset == conn.out.size()) {
    conn.out.clear();
    conn.out_offset = 0;
  }
  conn.out.insert(conn.out.end(), frame.begin(), frame.end());
  flush_writes(conn);
}

void AuctionService::flush_writes(Connection& conn) {
  while (conn.out_offset < conn.out.size()) {
    const ssize_t rc =
        ::send(conn.fd, conn.out.data() + conn.out_offset,
               conn.out.size() - conn.out_offset, MSG_NOSIGNAL);
    if (rc < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;  // POLLOUT later
      drop_connection(conn, /*protocol_error=*/false);
      return;
    }
    conn.out_offset += static_cast<std::size_t>(rc);
  }
  if (conn.out_offset == conn.out.size()) {
    conn.out.clear();
    conn.out_offset = 0;
  }
}

void AuctionService::drop_connection(Connection& conn, bool protocol_error) {
  if (conn.dead) return;
  conn.dead = true;
  connections_dropped_.fetch_add(1, std::memory_order_relaxed);
  if (protocol_error) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
  }
  if (conn.fd >= 0) {
    ::close(conn.fd);
  }
  // A gone connection can never hear a result, so its not-yet-cleared bids
  // must not decide future rounds.
  purge_connection_bids(conn.id);
}

void AuctionService::purge_connection_bids(std::uint64_t conn_id) {
  for (auto& [market_id, market] : markets_) {
    for (auto it = market.pending.begin(); it != market.pending.end();) {
      Bucket& bucket = it->second;
      for (std::size_t i = bucket.rows.size(); i-- > 0;) {
        if (bucket.row_owners[i] != conn_id) continue;
        bucket.rows.erase(bucket.rows.begin() +
                          static_cast<std::ptrdiff_t>(i));
        bucket.row_owners.erase(bucket.row_owners.begin() +
                                static_cast<std::ptrdiff_t>(i));
      }
      std::erase(bucket.contributor_ids, conn_id);
      if (bucket.rows.empty()) {
        it = market.pending.erase(it);
      } else {
        ++it;
      }
    }
  }
}

void AuctionService::reap_dead_connections() {
  for (auto it = connections_.begin(); it != connections_.end();) {
    if (it->second.dead) {
      it = connections_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace sfl::service
