// Market simulation with learning (EXP3) bidders.
//
// Every client adapts its bid factor from realized utility instead of
// following a fixed strategy. The population's mean bid factor over time is
// the empirical game dynamic: under a DSIC mechanism it converges toward 1
// (truth-telling), under a manipulable one it drifts to the profitable
// misreport (experiment E13).
#pragma once

#include "auction/mechanism.h"
#include "core/market_simulation.h"
#include "econ/learning_bidder.h"

namespace sfl::core {

struct AdaptiveMarketResult {
  std::string mechanism_name;
  std::size_t rounds = 0;

  /// Population mean of the learners' *expected* bid factor, sampled every
  /// `sample_every` rounds (first entry = before any learning).
  std::vector<double> mean_factor_series;
  /// Mean bid factor among the round *winners*, averaged per sample window
  /// — the factor actual trades happen at (losers carry no signal and
  /// dilute the population mean).
  std::vector<double> winner_factor_series;
  std::size_t sample_every = 1;

  double initial_mean_factor = 1.0;
  double final_mean_factor = 1.0;
  /// Mean winning factor over the final sample window.
  double final_winner_factor = 1.0;
  /// Fraction of clients whose modal arm is the truthful factor (1.0) at
  /// the end.
  double truthful_modal_fraction = 0.0;

  double cumulative_welfare = 0.0;   ///< at true costs
  double cumulative_payment = 0.0;
};

struct AdaptiveMarketConfig {
  econ::Exp3Config learner{};
  std::size_t sample_every = 50;
};

/// Runs `mechanism` for spec.rounds rounds with per-client EXP3 learners.
/// Values/costs are drawn exactly as in run_market (same seed => same
/// environment), so adaptive and fixed-strategy runs are comparable.
[[nodiscard]] AdaptiveMarketResult run_adaptive_market(
    sfl::auction::Mechanism& mechanism, const MarketSpec& spec,
    const AdaptiveMarketConfig& config = {});

}  // namespace sfl::core
