#include "core/orchestrator.h"

#include <algorithm>
#include <cmath>

#include "core/async_settler.h"
#include "core/long_term_online_vcg.h"
#include "econ/budget_tracker.h"
#include "econ/ledger.h"
#include "fl/local_trainer.h"
#include "reputation/reputation.h"
#include "util/require.h"

namespace sfl::core {

using sfl::auction::CandidateBatch;
using sfl::auction::MechanismResult;
using sfl::auction::RoundContext;
using sfl::auction::RoundSettlement;
using sfl::auction::WinnerSettlement;
using sfl::util::require;

namespace {
/// Steepness of the validation-loss-to-quality squash; 50 maps a 0.05-nat
/// validation-loss increase to quality ~0.08, so persistent harm (noisy
/// labels) drives q-hat low enough that cheapness cannot compensate.
constexpr double kQualitySquash = 50.0;
}  // namespace

std::vector<std::string> RunResult::csv_header() {
  return {"round",  "available",          "participants",  "payment",
          "cum_payment", "budget_backlog", "welfare",       "cum_welfare",
          "evaluated",   "test_accuracy",  "test_loss"};
}

void RunResult::write_rounds_csv(sfl::util::CsvWriter& csv) const {
  for (const RoundRecord& r : rounds) {
    csv.row(r.round, r.available, r.participants, r.payment, r.cumulative_payment,
            r.budget_backlog, r.welfare, r.cumulative_welfare,
            r.evaluated ? 1 : 0, r.test_accuracy, r.test_loss);
  }
}

SustainableFlOrchestrator::SustainableFlOrchestrator(
    const sim::Scenario& scenario, std::unique_ptr<fl::Model> model,
    fl::LocalTrainingSpec training,
    std::unique_ptr<sfl::auction::Mechanism> mechanism, OrchestratorConfig config,
    StrategyTable strategies)
    : scenario_(&scenario),
      trainer_(scenario.data, std::move(model), training, config.seed ^ 0xf1f1f1f1ULL),
      mechanism_(std::move(mechanism)),
      config_(config),
      strategies_(std::move(strategies)) {
  require(mechanism_ != nullptr, "orchestrator needs a mechanism");
  if (config_.async_settle && mechanism_->underlying() == mechanism_.get()) {
    // Streamed settlement: settle() returns immediately and the queue
    // updates run on the shared pool while the round does local training.
    // The loop's flush points keep trajectories bit-identical to sync.
    // Already-async mechanisms (registry lto-vcg-async / lto.async_settle)
    // stream on their own and are not wrapped twice.
    mechanism_ = std::make_unique<AsyncSettlementMechanism>(
        std::move(mechanism_));
  }
  require(config_.rounds > 0, "orchestrator needs at least one round");
  require(config_.valuation_scale > 0.0, "valuation scale must be > 0");
  require(strategies_.empty() || strategies_.size() == scenario.num_clients(),
          "strategies must be empty or one per client");
  require(config_.cost_multipliers.empty() ||
              config_.cost_multipliers.size() == scenario.num_clients(),
          "cost multipliers must be empty or one per client");
  for (const double m : config_.cost_multipliers) {
    require(m > 0.0, "cost multipliers must be > 0");
  }
  require(config_.dropout_probability >= 0.0 &&
              config_.dropout_probability <= 1.0,
          "dropout probability must be in [0, 1]");
}

RunResult SustainableFlOrchestrator::run() {
  const std::size_t num_clients = scenario_->num_clients();
  sfl::util::Rng rng(config_.seed);
  sfl::util::Rng cost_rng = rng.split();
  sfl::util::Rng bid_rng = rng.split();
  sfl::util::Rng energy_rng = rng.split();
  sfl::util::Rng dropout_rng = rng.split();

  econ::CostModel cost_model(num_clients, config_.cost, scenario_->data_sizes,
                             cost_rng);
  econ::UtilityLedger ledger(num_clients);
  econ::BudgetTracker budget(config_.per_round_budget);
  reputation::ReputationTracker reputation(num_clients, config_.reputation_prior,
                                           config_.reputation_alpha);
  std::optional<sim::EnergySystem> energy;
  if (config_.enable_energy) {
    energy.emplace(num_clients, config_.energy);
  }
  const econ::TruthfulStrategy truthful;
  // underlying() unwraps execution decorators (async settlement), so queue
  // diagnostics keep reading the real rule.
  auto* lto =
      dynamic_cast<LongTermOnlineVcgMechanism*>(mechanism_->underlying());

  const double mean_size = scenario_->mean_data_size();

  RunResult result;
  result.mechanism_name = mechanism_->name();
  result.rounds.reserve(config_.rounds);
  double cumulative_welfare = 0.0;

  // Round-pipeline buffers hoisted out of the loop: the slate, the winner
  // lookup, and the mechanism result are cleared and refilled within their
  // existing capacity each round, so the auction side of a steady-state
  // round allocates nothing.
  CandidateBatch batch;
  batch.reserve(num_clients);
  std::vector<std::size_t> slot_of_client;
  MechanismResult outcome;
  std::vector<bool> dropped_flag;
  std::vector<std::size_t> participants;
  RoundSettlement settlement;

  for (std::size_t round = 0; round < config_.rounds; ++round) {
    if (energy.has_value()) {
      energy->harvest_round(energy_rng);
    }
    std::vector<double> costs = cost_model.draw_round(cost_rng);
    if (!config_.cost_multipliers.empty()) {
      for (std::size_t i = 0; i < costs.size(); ++i) {
        costs[i] *= config_.cost_multipliers[i];
      }
    }

    // Build the candidate slate (SoA batch) from available clients;
    // slot_of_client maps a winning id back to its batch row.
    batch.clear();
    slot_of_client.assign(num_clients, num_clients);
    for (std::size_t i = 0; i < num_clients; ++i) {
      const double e_i = scenario_->energy_costs[i];
      if (energy.has_value() && !energy->available(i, e_i)) {
        energy->note_starvation(i);
        continue;
      }
      const econ::BiddingStrategy& strategy =
          (!strategies_.empty() && strategies_[i] != nullptr) ? *strategies_[i]
                                                              : truthful;
      const double quality =
          config_.use_reputation ? reputation.quality(i) : 1.0;
      slot_of_client[i] = batch.size();
      batch.emplace(
          i,
          config_.valuation_scale * (scenario_->data_sizes[i] / mean_size) *
              quality,
          strategy.bid(costs[i], round, bid_rng), e_i);
    }

    RoundContext context;
    context.round = round;
    context.max_winners = config_.max_winners;
    context.per_round_budget = config_.per_round_budget;

    outcome.winners.clear();
    outcome.payments.clear();
    if (!batch.empty()) {
      mechanism_->run_round_into(batch, context, outcome);
    }

    // Failure injection: winners may drop before doing any work. Dropped
    // winners are unpaid and train nothing; the settlement below reports
    // them with a dropout flag instead of erasing them.
    std::size_t dropped = 0;
    dropped_flag.assign(outcome.winners.size(), false);
    if (config_.dropout_probability > 0.0 && !outcome.winners.empty()) {
      for (std::size_t w = 0; w < outcome.winners.size(); ++w) {
        if (dropout_rng.bernoulli(config_.dropout_probability)) {
          dropped_flag[w] = true;
          ++dropped;
        }
      }
    }

    // Settle: payments, energy, ledger, and the mechanism's settlement.
    double round_welfare = 0.0;
    double round_payment = 0.0;
    participants.clear();
    participants.reserve(outcome.winners.size());
    settlement.round = round;
    settlement.total_payment = 0.0;
    settlement.winners.clear();
    settlement.winners.reserve(outcome.winners.size());
    for (std::size_t w = 0; w < outcome.winners.size(); ++w) {
      const std::size_t client = outcome.winners[w];
      require(client < num_clients, "mechanism returned an unknown winner id");
      const std::size_t slot = slot_of_client[client];
      require(slot < batch.size(),
              "mechanism returned a winner that was not a candidate");
      const double value = batch.values()[slot];
      settlement.winners.push_back(
          WinnerSettlement{.client = client,
                           .bid = batch.bids()[slot],
                           .payment = dropped_flag[w] ? 0.0 : outcome.payments[w],
                           .energy_cost = batch.energy_costs()[slot],
                           .dropped = dropped_flag[w]});
      if (dropped_flag[w]) continue;
      participants.push_back(client);
      ledger.record(econ::LedgerEntry{.round = round,
                                      .client = client,
                                      .value = value,
                                      .payment = outcome.payments[w],
                                      .true_cost = costs[client]});
      round_welfare += value - costs[client];
      round_payment += outcome.payments[w];
      if (energy.has_value()) {
        energy->consume(client, scenario_->energy_costs[client]);
      }
    }
    settlement.total_payment = round_payment;
    budget.record_round(round_payment);
    mechanism_->settle(settlement);

    // Local training + aggregation. Reputation observes, for each winner,
    // how that client's update alone would move the server-held validation
    // loss: noisy-label clients consistently increase it (their local
    // optimum differs from the clean task), so their q-hat decays. This
    // avoids the self-correlation trap of comparing a client's update
    // against an aggregate that contains it.
    if (!participants.empty()) {
      const std::vector<double> params_before = trainer_.parameters();
      const double base_loss =
          fl::evaluate(trainer_.model(), scenario_->validation).loss;
      const fl::DetailedRound detail = trainer_.run_round_detailed(participants);
      const std::unique_ptr<fl::Model> probe = trainer_.model().clone();
      std::vector<double> probe_params(params_before.size());
      for (std::size_t slot = 0; slot < participants.size(); ++slot) {
        for (std::size_t i = 0; i < params_before.size(); ++i) {
          probe_params[i] = params_before[i] + detail.updates[slot].delta[i];
        }
        probe->set_parameters(probe_params);
        const double solo_loss =
            fl::evaluate(*probe, scenario_->validation).loss;
        // Squash the validation-loss delta into a [0, 1] quality
        // observation: improvement -> above 0.5, harm -> below 0.5.
        const double quality_obs =
            1.0 / (1.0 + std::exp(kQualitySquash * (solo_loss - base_loss)));
        reputation.observe(participants[slot], quality_obs);
      }
    }

    cumulative_welfare += round_welfare;

    // Settlement barrier: the record below reads queue state for THIS
    // round, so the async pipeline (which overlapped the mechanism's queue
    // updates with the training block above) must drain first. No-op for
    // synchronous mechanisms.
    mechanism_->flush();

    RoundRecord record;
    record.round = round;
    record.available = batch.size();
    record.participants = participants.size();
    record.dropped = dropped;
    record.payment = round_payment;
    record.cumulative_payment = budget.cumulative_payment();
    record.budget_backlog = lto != nullptr ? lto->budget_backlog() : 0.0;
    record.welfare = round_welfare;
    record.cumulative_welfare = cumulative_welfare;
    const bool evaluate_now = (round + 1) % std::max<std::size_t>(config_.eval_every, 1) == 0 ||
                              round + 1 == config_.rounds;
    if (evaluate_now) {
      const fl::EvalResult eval = trainer_.evaluate_test();
      record.test_accuracy = eval.accuracy;
      record.test_loss = eval.loss;
      record.evaluated = true;
      result.final_accuracy = eval.accuracy;
      result.final_loss = eval.loss;
    }
    result.rounds.push_back(record);
  }

  result.cumulative_welfare = cumulative_welfare;
  result.cumulative_payment = budget.cumulative_payment();
  result.average_payment = budget.average_payment();
  result.budget_violation = budget.cumulative_violation();
  result.peak_budget_violation = budget.peak_violation();
  result.ir_fraction = ledger.individually_rational_fraction();
  result.client_utilities = ledger.utility_vector();
  result.participation_counts = ledger.participation_vector();
  result.final_reputation = reputation.quality_vector();
  if (energy.has_value()) {
    result.final_battery = energy->battery_levels();
    result.starvation_counts.resize(num_clients);
    for (std::size_t i = 0; i < num_clients; ++i) {
      result.starvation_counts[i] = energy->starvation_count(i);
    }
  }
  return result;
}

}  // namespace sfl::core
