// The paper's primary contribution: Long-Term Online VCG (LTO-VCG).
//
// Per round t the mechanism:
//   1. forms drift-plus-penalty scores
//        phi_i = V*v_i - (V + Q(t))*b_i - Z_i(t)*e_i
//      where Q(t) is the budget virtual queue (arrival: round payment,
//      service: B-bar) and Z_i(t) the per-client sustainability queue
//      (arrival: e_i when i wins, service: r_i, i's energy-harvest rate);
//   2. selects the top-m positive-score candidates (an affine maximizer in
//      the bids: uniform positive weight V+Q(t) on every bid plus
//      bid-independent offsets, hence monotone in each bid);
//   3. pays winners their critical value
//        p_i = (V*v_i - Z_i*e_i - theta_i) / (V + Q(t)),
//      theta_i = best excluded score — dominant-strategy truthful and
//      individually rational per round by Myerson's lemma;
//   4. on settle(), pushes the realized round payment into Q and the
//      winners' energy costs into Z. Queue arrivals count every auction
//      winner (dropped or not): selection is what the drift bound and the
//      pacing constraint are written on.
//
// Steps 1-3 run on a WdpEngine against a (mechanism-owned or shared)
// RoundScratch: the in-process ShardedWdp scores `shards` contiguous spans
// of the CandidateBatch in parallel on the shared thread pool and merges
// exactly (shards = 1 is the serial path, bit-identical to the span
// solvers); with `dist_workers` > 0 the DistributedWdp coordinator ships
// the same spans to shard workers over a ShardTransport instead — every
// engine produces bit-identical allocations and payments. Steady-state
// rounds through run_round_into perform zero heap allocations after
// warm-up on the in-process engines.
//
// Pipelined rounds (dist_pipeline_depth > 1, distributed engine only): the
// submit_round / retire_round_into API keeps up to `depth` rounds in
// flight, each on its own scratch lane. Round t+1's scores depend on the
// queue state AFTER round t settles, so a round submitted while earlier
// rounds are unsettled is dispatched SPECULATIVELY with the current
// weights/penalties; when the preceding round settles, the speculation is
// validated against the post-settle state and mis-speculated rounds are
// re-dispatched with the true inputs under a fresh sequence number before
// they may retire. Retirement is in strict submission order, each retired
// round must settle before the next retires, and the settled trajectory
// (allocations, critical payments, Q(t)/Z_i(t) backlogs) is bit-identical
// to the serial engine at EVERY depth — speculation only changes wall
// time (it wins when the budget queue is quiescent between rounds and
// degrades gracefully to serial dispatch when every round moves Q).
//
// Lyapunov guarantees (verified empirically in E6): time-average welfare
// within O(1/V) of the constrained optimum, queue backlog (and hence budget
// violation transient) O(V).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "auction/mechanism.h"
#include "auction/round_scratch.h"
#include "auction/wdp_engine.h"
#include "lyapunov/virtual_queue.h"

namespace sfl::dist {
class DistributedWdp;
}  // namespace sfl::dist

namespace sfl::core {

/// Which truthful payment rule to apply (they coincide for the modular
/// objective; kept separate for the E12 ablation).
enum class PaymentRule { kCriticalValue, kVcgExternality };

/// What arrival the budget queue sees: the realized payments (default) or
/// the sum of winning bids (the proxy used inside the drift objective).
enum class QueueArrivalMode { kRealizedPayment, kBidProxy };

struct LtoVcgConfig {
  /// Lyapunov penalty weight V > 0: higher V emphasizes per-round welfare,
  /// lower V emphasizes budget-queue stability.
  double v_weight = 10.0;
  /// Long-term per-round payment budget B-bar > 0.
  double per_round_budget = 5.0;
  PaymentRule payment_rule = PaymentRule::kCriticalValue;
  QueueArrivalMode queue_arrival = QueueArrivalMode::kRealizedPayment;
  /// Per-client sustainable participation-energy rates r_i (service rates of
  /// the Z queues). Empty disables the sustainability queues.
  std::vector<double> energy_rates{};
  /// Optional time-varying budget: round t's queue service is
  /// budget_schedule[t % size] (all > 0; e.g. a diurnal or weekly budget
  /// profile). The long-term constraint becomes the schedule's mean. Empty
  /// uses the constant per_round_budget.
  std::vector<double> budget_schedule{};
  /// WDP shard count: 1 = serial (default), 0 = auto (hardware
  /// concurrency for the in-process engine, the worker count for the
  /// distributed one), k > 1 = exactly k contiguous batch spans. Every
  /// shard count produces bit-identical allocations and payments; sharding
  /// only changes wall time.
  std::size_t shards = 1;
  /// Distributed WDP: > 0 routes winner determination through the
  /// DistributedWdp coordinator (src/dist) over an in-process loopback
  /// transport with this many shard workers — requests and survivor sets
  /// cross the real wire codec, results stay bit-identical to the
  /// in-process engines. 0 keeps the ShardedWdp engine.
  std::size_t dist_workers = 0;
  /// Distributed round pipelining (requires dist_workers > 0 and the
  /// critical-value payment rule): > 1 enables the submit_round /
  /// retire_round_into API with this many per-round scratch lanes, so span
  /// dispatch for round t+1 overlaps round t's straggler waits. Results
  /// stay bit-identical to depth 1 at every depth (speculative dispatches
  /// are validated at settle time and re-issued on mismatch). 1 = plain
  /// synchronous rounds.
  std::size_t dist_pipeline_depth = 1;
  /// Hedged dispatch with adaptive per-worker deadlines on the distributed
  /// engine (see DistributedWdpConfig::hedge): laggard shards are
  /// re-dispatched to the next live worker in rendezvous order before the
  /// full receive timeout, first valid reply wins. Never changes results —
  /// only tail latency under stragglers and churn. Ignored when
  /// dist_workers == 0.
  bool dist_hedge = true;
  /// Externally-owned round scratch shared across mechanisms (nullptr =
  /// the mechanism owns a private one). Sharing is safe for mechanisms
  /// whose rounds never run concurrently — the scratch carries no state
  /// between rounds; multi-mechanism comparison runs use one warmed
  /// scratch for the whole roster to skip per-mechanism growth.
  sfl::auction::RoundScratch* shared_scratch = nullptr;
  /// Thread lanes for the kVcgExternality payment rule's per-winner
  /// leave-one-out re-solves (0 = auto, 1 = serial, k = exactly k lanes).
  /// Bit-identical payments at every count; ignored under the
  /// critical-value rule.
  std::size_t oracle_threads = 1;
  /// Registry key this instance was built under (reported by name()).
  std::string name = "lto-vcg";
};

class LongTermOnlineVcgMechanism final : public sfl::auction::Mechanism {
 public:
  explicit LongTermOnlineVcgMechanism(const LtoVcgConfig& config);

  [[nodiscard]] std::string name() const override { return config_.name; }
  [[nodiscard]] sfl::auction::MechanismResult run_round(
      const std::vector<sfl::auction::Candidate>& candidates,
      const sfl::auction::RoundContext& context) override;
  /// Native SoA path: scores, selects, and prices directly on the batch
  /// arrays. Bit-identical to the AoS overload.
  [[nodiscard]] sfl::auction::MechanismResult run_round(
      const sfl::auction::CandidateBatch& batch,
      const sfl::auction::RoundContext& context) override;
  /// Zero-allocation steady-state path: reuses the mechanism's RoundScratch
  /// and the caller's result buffers. Identical results to run_round.
  void run_round_into(const sfl::auction::CandidateBatch& batch,
                      const sfl::auction::RoundContext& context,
                      sfl::auction::MechanismResult& out) override;

  /// Queue updates from the full settlement: Q sees the realized payments
  /// (or the bid proxy), each winner's Z sees its energy cost.
  ///
  /// Idempotent per round: with no new auction round opened since the
  /// last applied settlement, a re-report with the same round stamp is
  /// dropped here, and the observe() shim refuses any report once
  /// settle() consumed the round's winner cache (stamp-independent) — so
  /// a caller that reports through BOTH settle() and the deprecated
  /// observe() shim in one round cannot double-apply the queue updates.
  void settle(const sfl::auction::RoundSettlement& settlement) override;

  /// Queue updates depend on application order (max(0, .) clamps), so the
  /// async executor must keep settlements in round order — the base-class
  /// default, restated here as the explicit contract.
  [[nodiscard]] sfl::auction::SettlementOrdering settlement_ordering()
      const noexcept override {
    return sfl::auction::SettlementOrdering::kRoundOrder;
  }

  /// Deprecated shim: reconstructs a settlement for callers that only
  /// report the legacy (round, total payment) observation. Bids and energy
  /// costs come from this round's own allocation, cached by run_round.
  void observe(const sfl::auction::RoundObservation& observation) override;

  [[nodiscard]] bool is_truthful() const noexcept override { return true; }

  /// Current budget-queue backlog Q(t).
  [[nodiscard]] double budget_backlog() const noexcept {
    return budget_queue_.backlog();
  }
  /// Time-average budget backlog (O(V) check).
  [[nodiscard]] double average_budget_backlog() const noexcept {
    return budget_queue_.average_backlog();
  }
  /// Z_i backlog for a client (0 when sustainability queues are disabled).
  [[nodiscard]] double sustainability_backlog(sfl::auction::ClientId id) const;

  [[nodiscard]] const LtoVcgConfig& config() const noexcept { return config_; }

  /// The affine-maximizer weights the next round would use (exposed for
  /// tests and diagnostics).
  [[nodiscard]] sfl::auction::ScoreWeights current_weights() const noexcept;

  // --- external-round API (mega-batch clearing) ----------------------------
  //
  // A multi-market host (service::clear_market_rounds) scores MANY
  // mechanisms' rounds through ONE WdpEngine::run_rounds call. The mechanism
  // exports its round inputs (weights + penalties), the host runs the fused
  // engine pass, and the winners/payments come back through
  // commit_external_round — bit-identical to run_round_into, because the
  // engine's mega-batch contract is per-market bit-identity and the inputs
  // are produced by the same code.

  /// Whether this instance's rounds may be cleared externally: the
  /// critical-value payment rule with no pipelined rounds in flight.
  [[nodiscard]] bool supports_external_rounds() const noexcept {
    return config_.payment_rule == PaymentRule::kCriticalValue &&
           lane_count_ == 0;
  }

  /// Exports the next round's affine-maximizer inputs for `batch`: writes
  /// the Z_i(t)*e_i penalties into `out` (empty when the sustainability
  /// queues are off) and returns the current weights. Pure observation: no
  /// round is opened until commit_external_round.
  sfl::auction::ScoreWeights external_round_inputs(
      const sfl::auction::CandidateBatch& batch,
      sfl::auction::Penalties& out);

  /// Publishes an externally-computed round (winners as batch indices,
  /// ascending, with their critical payments) exactly as run_round_into
  /// would have: opens the round for the settle() idempotency guard and
  /// fills `out`. The inputs must have come from external_round_inputs on
  /// the same queue state with no settle in between.
  void commit_external_round(const sfl::auction::CandidateBatch& batch,
                             std::span<const std::size_t> selected,
                             std::span<const double> payments,
                             sfl::auction::MechanismResult& out);

  // --- pipelined round API (dist_pipeline_depth > 1) ------------------------

  /// Speculation bookkeeping across a pipelined run. Every speculative
  /// submission is validated exactly once (at its predecessor's settle), so
  /// confirmed + redispatched == speculative once the pipeline drains.
  struct PipelineStats {
    std::size_t submitted = 0;     ///< rounds through submit_round
    std::size_t speculative = 0;   ///< dispatched before inputs were final
    std::size_t confirmed = 0;     ///< speculation validated unchanged
    std::size_t redispatched = 0;  ///< mis-speculated, re-sent exact
  };

  /// Scratch lanes available for in-flight rounds (1 = pipelining off).
  [[nodiscard]] std::size_t pipeline_depth() const noexcept {
    return config_.dist_pipeline_depth;
  }
  [[nodiscard]] std::size_t rounds_in_flight() const noexcept {
    return lane_count_;
  }
  [[nodiscard]] const PipelineStats& pipeline_stats() const noexcept {
    return pipeline_stats_;
  }

  /// Dispatches one round's winner determination without waiting for it.
  /// The caller owns `batch` and must keep it alive and unmodified until
  /// the round retires. Requires pipeline_depth() > 1 and a free lane.
  /// Rounds submitted while earlier rounds are unsettled go out with
  /// speculative weights/penalties and are corrected at settle time.
  void submit_round(const sfl::auction::CandidateBatch& batch,
                    const sfl::auction::RoundContext& context);

  /// Completes the OLDEST submitted round and publishes its winners and
  /// critical payments into `out` — bit-identical to what run_round would
  /// have produced at the same queue state. Each retired round must be
  /// settled (settle()) before the next retire_round_into: the settle is
  /// what fixes the next round's true inputs.
  void retire_round_into(sfl::auction::MechanismResult& out);

  /// The distributed engine behind the WdpEngine interface, or nullptr for
  /// in-process configurations (exposed so tests and harnesses can script
  /// transport faults).
  [[nodiscard]] sfl::dist::DistributedWdp* distributed_engine() noexcept {
    return dist_;
  }

 private:
  /// Writes Z_i(t)*e_i penalties for the slate into `out` (cleared first;
  /// left empty when the sustainability queues are off).
  void penalties_into(std::span<const sfl::auction::ClientId> ids,
                      std::span<const double> energy_costs,
                      sfl::auction::Penalties& out);

  /// Settle-time speculation check: the round just settled determines the
  /// oldest in-flight round's true inputs — confirm its dispatch or
  /// re-issue it with the corrected weights/penalties.
  void confirm_pipeline_after_settle();

  /// Shared tail of the round paths: publishes winners/payments into `out`
  /// (reusing its capacity) and caches the winners for the observe() shim.
  void fill_result(const sfl::auction::CandidateBatch& batch,
                   std::span<const std::size_t> selected,
                   std::span<const double> payments,
                   sfl::auction::MechanismResult& out);

  LtoVcgConfig config_;
  sfl::lyapunov::VirtualQueue budget_queue_;
  std::optional<sfl::lyapunov::QueueBank> sustainability_queues_;

  /// The per-round buffers: the configured shared scratch, or the private
  /// one. One scratch per mechanism round: run_round is not re-entrant (it
  /// never was — queue state already serializes rounds).
  [[nodiscard]] sfl::auction::RoundScratch& scratch() noexcept {
    return config_.shared_scratch != nullptr ? *config_.shared_scratch
                                             : scratch_;
  }

  /// The WDP + payment engine: ShardedWdp in-process, DistributedWdp when
  /// config.dist_workers > 0 (selected once at construction).
  std::unique_ptr<sfl::auction::WdpEngine> wdp_;
  /// Typed view of wdp_ when it is the distributed coordinator (nullptr
  /// otherwise); the pipelined round API drives it directly.
  sfl::dist::DistributedWdp* dist_ = nullptr;
  sfl::auction::RoundScratch scratch_;
  /// Leave-one-out buffers for the kVcgExternality payment rule (unused —
  /// and empty — under the critical-value rule).
  sfl::auction::OracleScratch oracle_scratch_;
  /// Reused Z-queue arrival accumulator (settle() stays allocation-free).
  std::vector<double> settle_arrivals_;

  /// One in-flight pipelined round: its scratch lane (scores, survivors,
  /// allocation, payments, dispatched penalties) plus what the mechanism
  /// needs to publish and validate it.
  struct PipelineLane {
    sfl::auction::RoundScratch scratch;
    const sfl::auction::CandidateBatch* batch = nullptr;
    sfl::auction::ScoreWeights weights{};  ///< weights actually dispatched
    std::uint64_t handle = 0;              ///< engine round handle
    std::size_t max_winners = 0;
    bool speculative = false;  ///< inputs unvalidated until previous settle
  };
  /// Ring of dist_pipeline_depth scratch lanes (empty when depth == 1).
  std::vector<PipelineLane> pipe_lanes_;
  std::size_t lane_head_ = 0;
  std::size_t lane_count_ = 0;
  /// A produced round's settlement has not been applied yet — the next
  /// submission cannot know its true inputs and must go out speculative.
  bool settle_pending_ = false;
  /// Reused buffer for settle-time penalty revalidation.
  sfl::auction::Penalties penalties_check_;
  PipelineStats pipeline_stats_;

  /// Last round's winners (client, bid, energy) — consumed ONLY by the
  /// deprecated observe() shim, which must rebuild the settlement a legacy
  /// caller cannot supply. settle() itself is stateless across rounds.
  std::vector<sfl::auction::WinnerSettlement> last_round_winners_;

  /// Per-round idempotency guard behind settle(): run_round opens a round;
  /// the first settlement applied closes it. A settlement arriving with
  /// the round closed AND re-reporting the last settled round stamp is the
  /// settle()+observe() double report and is dropped. Keying on the flag
  /// (not the stamp alone) keeps legacy drivers working that settle many
  /// rounds without ever stamping RoundSettlement::round.
  bool round_open_ = true;
  std::size_t last_settled_round_ = static_cast<std::size_t>(-1);
};

}  // namespace sfl::core
