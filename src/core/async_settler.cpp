#include "core/async_settler.h"

#include <utility>

#include "util/require.h"
#include "util/thread_pool.h"

namespace sfl::core {

using sfl::auction::Mechanism;
using sfl::auction::RoundSettlement;
using sfl::auction::SettlementOrdering;
using sfl::auction::WinnerSettlement;

AsyncSettler::AsyncSettler(Mechanism& mechanism, AsyncSettlerConfig config)
    : mechanism_(&mechanism),
      pool_(config.pool != nullptr ? config.pool : &sfl::util::shared_pool()),
      queue_(config.queue_capacity),
      ordering_(mechanism.settlement_ordering()) {}

AsyncSettler::~AsyncSettler() {
  drain();  // not flush(): a destructor cannot rethrow a pending error
  // A drain task may still be queued on the pool (it will find the queue
  // empty); wait it out so it cannot touch a dead settler.
  std::unique_lock lock(lifecycle_mutex_);
  idle_.wait(lock, [this] { return tasks_in_flight_ == 0; });
  queue_.close();
}

void AsyncSettler::enqueue(RoundSettlement& settlement) {
  // Backpressure without pool dependence: a full ring is drained by the
  // producer itself, so enqueue always completes even if every pool worker
  // is busy with training tasks.
  while (!queue_.try_push(settlement)) {
    drain();
    const std::scoped_lock lock(consumer_mutex_);
    if (pending_error_) {
      // Draining is suspended while an error awaits the barrier, so a
      // full ring cannot empty — and this settlement sits behind the
      // failing one, which flush() discards anyway. Drop it now instead
      // of spinning; the next flush() surfaces the error.
      return;
    }
  }
  schedule_drain();
}

void AsyncSettler::enqueue(RoundSettlement&& settlement) {
  RoundSettlement local = std::move(settlement);
  enqueue(local);
}

void AsyncSettler::flush() {
  // Inline participation: applying here (instead of waiting for the queued
  // pool task) keeps the barrier latency bounded by the backlog itself.
  // The consumer mutex inside drain() waits out any applier mid-batch.
  drain();
  // A settle() that threw while draining (on a pool worker or inline) is
  // surfaced at the barrier — the same catchable error the sync path
  // raises, instead of a process abort in a pool task.
  std::exception_ptr error;
  {
    const std::scoped_lock lock(consumer_mutex_);
    std::swap(error, pending_error_);
    if (error) {
      // Everything still queued at the barrier sits behind the failing
      // settlement — discard it here (drains are no-ops while the error
      // is pending, so nothing was applied out of order in between).
      while (queue_.try_pop(drain_slot_)) {
      }
    }
  }
  if (error) std::rethrow_exception(error);
}

void AsyncSettler::schedule_drain() {
  bool expected = false;
  if (!drain_pending_.compare_exchange_strong(expected, true,
                                              std::memory_order_acq_rel)) {
    return;  // a task is already pending; it will see our settlement
  }
  {
    const std::scoped_lock lock(lifecycle_mutex_);
    ++tasks_in_flight_;
  }
  pool_->submit([this] {
    // Clear the pending flag BEFORE draining: an enqueue that lands after
    // our final pop re-arms a new task instead of being stranded.
    drain_pending_.store(false, std::memory_order_release);
    drain();
    const std::scoped_lock lock(lifecycle_mutex_);
    --tasks_in_flight_;
    if (tasks_in_flight_ == 0) idle_.notify_all();
  });
}

void AsyncSettler::merge_into_slot(RoundSettlement& from, bool first) {
  if (first) {
    merge_slot_.winners.clear();
    merge_slot_.total_payment = 0.0;
  }
  // round = latest: a merged batch stands in for its newest member when a
  // rule stamps time (commutative rules by definition do not care).
  merge_slot_.round = from.round;
  merge_slot_.total_payment += from.total_payment;
  for (const WinnerSettlement& w : from.winners) {
    merge_slot_.winners.push_back(w);
  }
}

void AsyncSettler::drain() {
  // One applier at a time: settle() is not thread-safe, and exclusive
  // appliers popping a FIFO ring apply settlements in enqueue order — the
  // kRoundOrder contract — no matter which thread runs the drain.
  const std::scoped_lock lock(consumer_mutex_);
  if (pending_error_) return;  // stop applying; flush() will rethrow
  try {
    if (ordering_ == SettlementOrdering::kCommutative) {
      std::size_t rounds = 0;
      while (queue_.try_pop(drain_slot_)) {
        merge_into_slot(drain_slot_, /*first=*/rounds == 0);
        ++rounds;
      }
      if (rounds == 0) return;
      mechanism_->settle(merge_slot_);
      settled_rounds_.fetch_add(rounds, std::memory_order_relaxed);
      if (rounds > 1) merged_batches_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    while (queue_.try_pop(drain_slot_)) {
      mechanism_->settle(drain_slot_);
      settled_rounds_.fetch_add(1, std::memory_order_relaxed);
    }
  } catch (...) {
    // A task that let this escape would terminate the process (pool
    // contract); park it for the next barrier instead. Draining stops
    // while the error is pending; flush() discards whatever is queued
    // behind the failing settlement when it rethrows (the synchronous
    // loop would have stopped at the throwing settle(), so applying later
    // rounds over a skipped one would silently diverge from it).
    pending_error_ = std::current_exception();
  }
}

namespace {
std::unique_ptr<Mechanism> require_inner(std::unique_ptr<Mechanism> inner) {
  sfl::util::require(inner != nullptr,
                     "async settlement needs an inner mechanism");
  return inner;
}
}  // namespace

AsyncSettlementMechanism::AsyncSettlementMechanism(
    std::unique_ptr<Mechanism> inner, AsyncSettlerConfig config)
    : inner_(require_inner(std::move(inner))), settler_(*inner_, config) {}

sfl::auction::MechanismResult AsyncSettlementMechanism::run_round(
    const std::vector<sfl::auction::Candidate>& candidates,
    const sfl::auction::RoundContext& context) {
  settler_.flush();
  return inner_->run_round(candidates, context);
}

sfl::auction::MechanismResult AsyncSettlementMechanism::run_round(
    const sfl::auction::CandidateBatch& batch,
    const sfl::auction::RoundContext& context) {
  settler_.flush();
  return inner_->run_round(batch, context);
}

void AsyncSettlementMechanism::run_round_into(
    const sfl::auction::CandidateBatch& batch,
    const sfl::auction::RoundContext& context,
    sfl::auction::MechanismResult& out) {
  settler_.flush();
  inner_->run_round_into(batch, context, out);
}

void AsyncSettlementMechanism::settle(const RoundSettlement& settlement) {
  enqueue_slot_ = settlement;  // copy-assign reuses the slot's capacity
  settler_.enqueue(enqueue_slot_);
}

void AsyncSettlementMechanism::observe(
    const sfl::auction::RoundObservation& observation) {
  // The legacy shim reconstructs state from the inner rule's round cache,
  // so it must run synchronously against settled state.
  settler_.flush();
  inner_->observe(observation);
}

}  // namespace sfl::core
