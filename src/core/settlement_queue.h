// Bounded MPSC queue of RoundSettlement for the async settlement pipeline.
//
// The orchestrator's training loop produces one settlement per round; an
// AsyncSettler worker consumes them and applies mechanism->settle() off the
// critical path. The queue is a fixed-capacity ring with swap-based push and
// pop: a producer that reuses one RoundSettlement (and a consumer that
// reuses one drain slot) recycles the winners vectors through the ring, so
// the steady-state pipeline moves settlements without heap allocations —
// the same discipline as the zero-allocation round pipeline it feeds.
//
// Blocking push/pop pair with try_* variants so callers can choose
// backpressure policy: AsyncSettler uses try_push and, when the ring is
// full, drains inline on the producer thread — producer progress never
// depends on pool scheduling.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <vector>

#include "auction/mechanism.h"

namespace sfl::core {

class SettlementQueue {
 public:
  /// Ring capacity must be >= 1.
  explicit SettlementQueue(std::size_t capacity);

  SettlementQueue(const SettlementQueue&) = delete;
  SettlementQueue& operator=(const SettlementQueue&) = delete;

  /// Swaps `settlement` into the ring, leaving the displaced slot's
  /// recycled storage behind in `settlement`. Blocks while the ring is
  /// full. Throws std::logic_error if the queue is closed.
  void push(sfl::auction::RoundSettlement& settlement);

  /// Non-blocking push: returns false (and leaves `settlement` untouched)
  /// when the ring is full. Throws std::logic_error if closed.
  [[nodiscard]] bool try_push(sfl::auction::RoundSettlement& settlement);

  /// Swaps the oldest settlement into `out`. Blocks while empty; returns
  /// false only once the queue is closed AND drained.
  [[nodiscard]] bool pop(sfl::auction::RoundSettlement& out);

  /// Non-blocking pop: returns false when the ring is currently empty.
  [[nodiscard]] bool try_pop(sfl::auction::RoundSettlement& out);

  /// Wakes blocked producers/consumers; further push calls throw, pop
  /// drains the remainder then returns false.
  void close();

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] bool empty() const { return size() == 0; }
  [[nodiscard]] std::size_t capacity() const noexcept { return ring_.size(); }

  /// High-water mark of the ring occupancy (diagnostics/benches).
  [[nodiscard]] std::size_t max_depth() const;

 private:
  /// Caller holds mutex_. Swap-in at the tail.
  void push_locked(sfl::auction::RoundSettlement& settlement);
  /// Caller holds mutex_. Swap-out from the head.
  void pop_locked(sfl::auction::RoundSettlement& out);

  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::vector<sfl::auction::RoundSettlement> ring_;
  std::size_t head_ = 0;   ///< index of the oldest element
  std::size_t count_ = 0;  ///< occupied slots
  std::size_t max_depth_ = 0;
  bool closed_ = false;
};

}  // namespace sfl::core
