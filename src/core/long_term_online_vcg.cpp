#include "core/long_term_online_vcg.h"

#include "auction/payments.h"
#include "auction/winner_determination.h"
#include "util/require.h"

namespace sfl::core {

using sfl::auction::Allocation;
using sfl::auction::Candidate;
using sfl::auction::CandidateBatch;
using sfl::auction::MechanismResult;
using sfl::auction::Penalties;
using sfl::auction::RoundContext;
using sfl::auction::RoundObservation;
using sfl::auction::RoundSettlement;
using sfl::auction::ScoreWeights;
using sfl::auction::WinnerSettlement;
using sfl::util::require;

LongTermOnlineVcgMechanism::LongTermOnlineVcgMechanism(const LtoVcgConfig& config)
    : config_(config), budget_queue_(config.per_round_budget) {
  require(config.v_weight > 0.0, "V weight must be > 0");
  require(config.per_round_budget > 0.0, "per-round budget must be > 0");
  if (!config.energy_rates.empty()) {
    for (const double rate : config.energy_rates) {
      require(rate >= 0.0, "energy rates must be >= 0");
    }
    sustainability_queues_.emplace(config.energy_rates);
  }
  for (const double budget : config.budget_schedule) {
    require(budget > 0.0, "scheduled budgets must be > 0");
  }
}

ScoreWeights LongTermOnlineVcgMechanism::current_weights() const noexcept {
  return ScoreWeights{.value_weight = config_.v_weight,
                      .bid_weight = config_.v_weight + budget_queue_.backlog()};
}

double LongTermOnlineVcgMechanism::sustainability_backlog(
    sfl::auction::ClientId id) const {
  if (!sustainability_queues_.has_value()) return 0.0;
  return sustainability_queues_->backlog(id);
}

Penalties LongTermOnlineVcgMechanism::penalties_for(
    std::span<const sfl::auction::ClientId> ids,
    std::span<const double> energy_costs) const {
  Penalties penalties;
  if (!sustainability_queues_.has_value()) return penalties;
  penalties.reserve(ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    require(ids[i] < sustainability_queues_->size(),
            "candidate id outside the configured energy-rate table");
    penalties.push_back(sustainability_queues_->backlog(ids[i]) *
                        energy_costs[i]);
  }
  return penalties;
}

MechanismResult LongTermOnlineVcgMechanism::run_round(
    const std::vector<Candidate>& candidates, const RoundContext& context) {
  // Single implementation: the AoS slate is gathered into SoA form and runs
  // the same batch path, so both entry points agree bit-for-bit.
  return run_round(CandidateBatch::from_aos(candidates), context);
}

MechanismResult LongTermOnlineVcgMechanism::run_round(
    const CandidateBatch& batch, const RoundContext& context) {
  const ScoreWeights weights = current_weights();
  const Penalties penalties =
      penalties_for(batch.ids(), batch.energy_costs());

  const Allocation allocation = sfl::auction::select_top_m(
      batch, weights, context.max_winners, penalties);

  std::vector<double> payments;
  if (config_.payment_rule == PaymentRule::kCriticalValue) {
    payments = sfl::auction::critical_payments(batch, weights,
                                               context.max_winners, allocation,
                                               penalties);
  } else {
    // The externality rule re-solves the WDP per winner; it is the E12
    // ablation path, so the AoS materialization cost is acceptable.
    payments = sfl::auction::vcg_payments(
        batch.to_aos(), weights, context.max_winners, allocation,
        [](const std::vector<Candidate>& reduced, const ScoreWeights& w,
           std::size_t m, const Penalties& p) {
          return sfl::auction::select_top_m(reduced, w, m, p);
        },
        penalties);
  }

  return finish_round(batch, allocation, std::move(payments));
}

MechanismResult LongTermOnlineVcgMechanism::finish_round(
    const CandidateBatch& batch, const Allocation& allocation,
    std::vector<double> payments) {
  // Cache this round's winners for the deprecated observe() shim; settle()
  // never reads it.
  last_round_winners_.clear();
  last_round_winners_.reserve(allocation.selected.size());
  for (const std::size_t index : allocation.selected) {
    last_round_winners_.push_back(
        WinnerSettlement{.client = batch.ids()[index],
                         .bid = batch.bids()[index],
                         .payment = 0.0,
                         .energy_cost = batch.energy_costs()[index],
                         .dropped = false});
  }
  return sfl::auction::make_result(batch, allocation, std::move(payments));
}

void LongTermOnlineVcgMechanism::settle(const RoundSettlement& settlement) {
  // Q arrival: realized payments are what the long-term constraint is
  // written on; the bid proxy is the drift objective's internal surrogate.
  const double arrival =
      config_.queue_arrival == QueueArrivalMode::kRealizedPayment
          ? settlement.total_payment
          : settlement.total_bid();
  if (config_.budget_schedule.empty()) {
    budget_queue_.update(arrival);
  } else {
    const double service =
        config_.budget_schedule[settlement.round % config_.budget_schedule.size()];
    budget_queue_.update_with_service(arrival, service);
  }
  if (sustainability_queues_.has_value()) {
    // Every auction winner's Z queue is charged, dropped or not: the pacing
    // constraint bounds how often a client is *selected*, which is also the
    // only quantity the mechanism controls.
    std::vector<double> arrivals(sustainability_queues_->size(), 0.0);
    for (const WinnerSettlement& w : settlement.winners) {
      require(w.client < sustainability_queues_->size(),
              "settled winner outside the configured energy-rate table");
      arrivals[w.client] += w.energy_cost;
    }
    sustainability_queues_->update_all(arrivals);
  }
}

void LongTermOnlineVcgMechanism::observe(const RoundObservation& observation) {
  // Deprecated shim: legacy callers only report the round total, so the
  // per-winner breakdown (bids for the proxy queue, energy costs for the Z
  // queues) is rebuilt from this round's own allocation.
  RoundSettlement settlement;
  settlement.round = observation.round;
  settlement.total_payment = observation.total_payment;
  settlement.winners = last_round_winners_;
  last_round_winners_.clear();
  settle(settlement);
}

}  // namespace sfl::core
