#include "core/long_term_online_vcg.h"

#include "auction/payments.h"
#include "auction/sharded_wdp.h"
#include "auction/winner_determination.h"
#include "dist/distributed_wdp.h"
#include "util/require.h"

namespace sfl::core {

using sfl::auction::Allocation;
using sfl::auction::Candidate;
using sfl::auction::CandidateBatch;
using sfl::auction::MechanismResult;
using sfl::auction::Penalties;
using sfl::auction::RoundContext;
using sfl::auction::RoundObservation;
using sfl::auction::RoundSettlement;
using sfl::auction::ScoreWeights;
using sfl::auction::RoundScratch;
using sfl::auction::ShardedWdp;
using sfl::auction::ShardedWdpConfig;
using sfl::auction::WinnerSettlement;
using sfl::util::require;

LongTermOnlineVcgMechanism::LongTermOnlineVcgMechanism(const LtoVcgConfig& config)
    : config_(config), budget_queue_(config.per_round_budget) {
  require(config.dist_pipeline_depth >= 1, "pipeline depth must be >= 1");
  if (config.dist_workers > 0) {
    auto dist = std::make_unique<sfl::dist::DistributedWdp>(
        sfl::dist::DistributedWdpConfig{
            .shards = config.shards,
            .workers = config.dist_workers,
            .pipeline_depth = config.dist_pipeline_depth,
            .hedge = config.dist_hedge});
    dist_ = dist.get();
    wdp_ = std::move(dist);
  } else {
    require(config.dist_pipeline_depth == 1,
            "dist_pipeline_depth > 1 requires the distributed engine "
            "(dist_workers > 0)");
    wdp_ = std::make_unique<ShardedWdp>(
        ShardedWdpConfig{.shards = config.shards});
  }
  if (config.dist_pipeline_depth > 1) {
    require(config.payment_rule == PaymentRule::kCriticalValue,
            "pipelined rounds support only the critical-value payment rule");
    pipe_lanes_.resize(config.dist_pipeline_depth);
  }
  require(config.v_weight > 0.0, "V weight must be > 0");
  require(config.per_round_budget > 0.0, "per-round budget must be > 0");
  if (!config.energy_rates.empty()) {
    for (const double rate : config.energy_rates) {
      require(rate >= 0.0, "energy rates must be >= 0");
    }
    sustainability_queues_.emplace(config.energy_rates);
  }
  for (const double budget : config.budget_schedule) {
    require(budget > 0.0, "scheduled budgets must be > 0");
  }
}

ScoreWeights LongTermOnlineVcgMechanism::current_weights() const noexcept {
  return ScoreWeights{.value_weight = config_.v_weight,
                      .bid_weight = config_.v_weight + budget_queue_.backlog()};
}

double LongTermOnlineVcgMechanism::sustainability_backlog(
    sfl::auction::ClientId id) const {
  if (!sustainability_queues_.has_value()) return 0.0;
  return sustainability_queues_->backlog(id);
}

void LongTermOnlineVcgMechanism::penalties_into(
    std::span<const sfl::auction::ClientId> ids,
    std::span<const double> energy_costs, Penalties& out) {
  out.clear();
  if (!sustainability_queues_.has_value()) return;
  out.reserve(ids.size());
  for (std::size_t i = 0; i < ids.size(); ++i) {
    require(ids[i] < sustainability_queues_->size(),
            "candidate id outside the configured energy-rate table");
    out.push_back(sustainability_queues_->backlog(ids[i]) * energy_costs[i]);
  }
}

MechanismResult LongTermOnlineVcgMechanism::run_round(
    const std::vector<Candidate>& candidates, const RoundContext& context) {
  // Single implementation: the AoS slate is gathered into SoA form and runs
  // the same batch path, so both entry points agree bit-for-bit.
  return run_round(CandidateBatch::from_aos(candidates), context);
}

MechanismResult LongTermOnlineVcgMechanism::run_round(
    const CandidateBatch& batch, const RoundContext& context) {
  MechanismResult result;
  run_round_into(batch, context, result);
  return result;
}

void LongTermOnlineVcgMechanism::run_round_into(const CandidateBatch& batch,
                                                const RoundContext& context,
                                                MechanismResult& out) {
  // Opens the round for the idempotency guard: the next settlement (and
  // only the next) may apply queue updates. The settle also becomes the
  // event that determines any speculatively pipelined successor's inputs.
  round_open_ = true;
  settle_pending_ = true;
  const ScoreWeights weights = current_weights();
  penalties_into(batch.ids(), batch.energy_costs(), scratch().penalties);

  if (config_.payment_rule == PaymentRule::kCriticalValue) {
    // The steady-state hot path: one engine round against the reusable
    // scratch — slate validated once, selection and payments share the
    // merged order, nothing allocates after warm-up.
    RoundScratch& round_scratch = scratch();
    wdp_->run_round(batch, weights, context.max_winners,
                    round_scratch.penalties, round_scratch);
    fill_result(batch, round_scratch.allocation.selected,
                round_scratch.payments, out);
    return;
  }

  // The externality rule re-solves the WDP per winner; it is the E12
  // ablation path, so the AoS materialization cost is acceptable. The m
  // independent re-solves run across the pool per config.oracle_threads
  // (bit-identical payments at every lane count).
  RoundScratch& round_scratch = scratch();
  const Allocation& allocation =
      wdp_->select_top_m(batch, weights, context.max_winners,
                         round_scratch.penalties, round_scratch);
  std::vector<Candidate>& slate = oracle_scratch_.aos;
  slate.clear();
  slate.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) slate.push_back(batch.at(i));
  const std::vector<double> payments = sfl::auction::vcg_payments(
      slate, weights, context.max_winners, allocation,
      [](const std::vector<Candidate>& reduced, const ScoreWeights& w,
         std::size_t m, const Penalties& p) {
        return sfl::auction::select_top_m(reduced, w, m, p);
      },
      round_scratch.penalties, config_.oracle_threads, oracle_scratch_);
  fill_result(batch, allocation.selected, payments, out);
}

ScoreWeights LongTermOnlineVcgMechanism::external_round_inputs(
    const CandidateBatch& batch, Penalties& out) {
  require(supports_external_rounds(),
          "external_round_inputs requires the critical-value payment rule "
          "with no pipelined rounds in flight");
  penalties_into(batch.ids(), batch.energy_costs(), out);
  return current_weights();
}

void LongTermOnlineVcgMechanism::commit_external_round(
    const CandidateBatch& batch, std::span<const std::size_t> selected,
    std::span<const double> payments, MechanismResult& out) {
  require(supports_external_rounds(),
          "commit_external_round requires the critical-value payment rule "
          "with no pipelined rounds in flight");
  // Mirrors run_round_into's round-open bookkeeping: the next settlement
  // (and only the next) applies the queue updates.
  round_open_ = true;
  settle_pending_ = true;
  fill_result(batch, selected, payments, out);
}

void LongTermOnlineVcgMechanism::submit_round(const CandidateBatch& batch,
                                              const RoundContext& context) {
  require(dist_ != nullptr && config_.dist_pipeline_depth > 1,
          "submit_round requires dist_pipeline_depth > 1 (pipelined "
          "distributed engine)");
  require(lane_count_ < pipe_lanes_.size(),
          "round pipeline is full: retire a round before submitting another");
  PipelineLane& lane =
      pipe_lanes_[(lane_head_ + lane_count_) % pipe_lanes_.size()];
  lane.batch = &batch;
  lane.max_winners = context.max_winners;
  // Inputs are final only when every produced round has settled; otherwise
  // this dispatch is a speculation on the queues not moving, checked (and
  // corrected) when the preceding round's settlement lands.
  lane.speculative = lane_count_ > 0 || settle_pending_;
  lane.weights = current_weights();
  penalties_into(batch.ids(), batch.energy_costs(), lane.scratch.penalties);
  lane.handle = dist_->submit(batch, lane.weights, context.max_winners,
                              lane.scratch.penalties, lane.scratch);
  ++lane_count_;
  ++pipeline_stats_.submitted;
  if (lane.speculative) ++pipeline_stats_.speculative;
}

void LongTermOnlineVcgMechanism::retire_round_into(MechanismResult& out) {
  require(lane_count_ > 0, "retire_round_into: no rounds in flight");
  PipelineLane& lane = pipe_lanes_[lane_head_];
  // An unvalidated speculation may not retire: its dispatch could disagree
  // with the true post-settle inputs. The caller drives retire -> settle ->
  // retire in strict round order, which validates each lane in turn.
  require(!lane.speculative,
          "retire_round_into before the previous round settled: settle "
          "each retired round before retiring the next");
  const std::uint64_t handle = dist_->retire_oldest();
  require(handle == lane.handle,
          "engine retired a different round than the mechanism expected");
  round_open_ = true;
  settle_pending_ = true;
  fill_result(*lane.batch, lane.scratch.allocation.selected,
              lane.scratch.payments, out);
  lane.batch = nullptr;
  lane_head_ = (lane_head_ + 1) % pipe_lanes_.size();
  --lane_count_;
}

void LongTermOnlineVcgMechanism::confirm_pipeline_after_settle() {
  settle_pending_ = false;
  if (lane_count_ == 0) return;
  PipelineLane& lane = pipe_lanes_[lane_head_];
  if (!lane.speculative) return;
  // The settlement that just applied was the last one ahead of this round,
  // so its true inputs exist now: either the speculation matches them bit
  // for bit (the dispatched replies are exactly what a serial engine would
  // have requested) or the round is re-issued with the corrected inputs
  // under a fresh sequence number, stale speculative replies falling dead
  // against the per-round validation.
  const ScoreWeights truth = current_weights();
  penalties_into(lane.batch->ids(), lane.batch->energy_costs(),
                 penalties_check_);
  if (truth.value_weight == lane.weights.value_weight &&
      truth.bid_weight == lane.weights.bid_weight &&
      penalties_check_ == lane.scratch.penalties) {
    ++pipeline_stats_.confirmed;
  } else {
    lane.weights = truth;
    lane.scratch.penalties.swap(penalties_check_);
    dist_->resubmit(lane.handle, lane.weights, lane.scratch.penalties);
    ++pipeline_stats_.redispatched;
  }
  lane.speculative = false;
}

void LongTermOnlineVcgMechanism::fill_result(const CandidateBatch& batch,
                                             std::span<const std::size_t> selected,
                                             std::span<const double> payments,
                                             MechanismResult& out) {
  require(payments.size() == selected.size(),
          "one payment per winner required");
  const std::span<const sfl::auction::ClientId> ids = batch.ids();
  const std::span<const double> bids = batch.bids();
  const std::span<const double> energy_costs = batch.energy_costs();

  out.winners.clear();
  out.payments.clear();
  // Cache this round's winners for the deprecated observe() shim; settle()
  // never reads it.
  last_round_winners_.clear();
  for (std::size_t k = 0; k < selected.size(); ++k) {
    const std::size_t index =
        sfl::util::checked_index(selected[k], batch.size(), "winner");
    out.winners.push_back(ids[index]);
    out.payments.push_back(payments[k]);
    last_round_winners_.push_back(
        WinnerSettlement{.client = ids[index],
                         .bid = bids[index],
                         .payment = 0.0,
                         .energy_cost = energy_costs[index],
                         .dropped = false});
  }
}

void LongTermOnlineVcgMechanism::settle(const RoundSettlement& settlement) {
  // Idempotency guard: the settle()+observe() double-report pattern (or a
  // retried settlement) must not push the same round into the queues
  // twice. A duplicate is a settlement that arrives with no new auction
  // round opened since the last one AND the same round stamp — so drivers
  // that settle once per run_round (stamped or not) are untouched.
  if (!round_open_ && settlement.round == last_settled_round_) return;

  // Validate BEFORE mutating any queue: settle() is exception-atomic, so a
  // rejected settlement can be corrected and retried without Q having
  // already absorbed the payment arrival.
  if (sustainability_queues_.has_value()) {
    for (const WinnerSettlement& w : settlement.winners) {
      require(w.client < sustainability_queues_->size(),
              "settled winner outside the configured energy-rate table");
    }
  }

  // Q arrival: realized payments are what the long-term constraint is
  // written on; the bid proxy is the drift objective's internal surrogate.
  const double arrival =
      config_.queue_arrival == QueueArrivalMode::kRealizedPayment
          ? settlement.total_payment
          : settlement.total_bid();
  if (config_.budget_schedule.empty()) {
    budget_queue_.update(arrival);
  } else {
    const double service =
        config_.budget_schedule[settlement.round % config_.budget_schedule.size()];
    budget_queue_.update_with_service(arrival, service);
  }
  if (sustainability_queues_.has_value()) {
    // Every auction winner's Z queue is charged, dropped or not: the pacing
    // constraint bounds how often a client is *selected*, which is also the
    // only quantity the mechanism controls.
    settle_arrivals_.assign(sustainability_queues_->size(), 0.0);
    for (const WinnerSettlement& w : settlement.winners) {
      settle_arrivals_[w.client] += w.energy_cost;
    }
    sustainability_queues_->update_all(settle_arrivals_);
  }
  // Stamped only after a fully-applied settlement, so a throwing settle
  // (bad winner id) is not remembered as settled. The observe() cache is
  // consumed: the shim can no longer rebuild (and double-apply) a round
  // that settle() already handled, whatever round stamp it carries.
  last_settled_round_ = settlement.round;
  round_open_ = false;
  last_round_winners_.clear();
  // The queues just moved (or provably did not): the oldest in-flight
  // pipelined round's speculation is now decidable.
  confirm_pipeline_after_settle();
}

void LongTermOnlineVcgMechanism::observe(const RoundObservation& observation) {
  // Double-report guard, stamp-independent: a closed round whose winner
  // cache is gone was already settled through settle(), so this
  // observation is the legacy half of a double report — even when the two
  // reports disagree on round stamps (unstamped settle + stamped observe).
  if (!round_open_ && last_round_winners_.empty()) return;

  // Deprecated shim: legacy callers only report the round total, so the
  // per-winner breakdown (bids for the proxy queue, energy costs for the Z
  // queues) is rebuilt from this round's own allocation.
  RoundSettlement settlement;
  settlement.round = observation.round;
  settlement.total_payment = observation.total_payment;
  settlement.winners = last_round_winners_;
  last_round_winners_.clear();
  settle(settlement);
}

}  // namespace sfl::core
