#include "core/long_term_online_vcg.h"

#include "auction/payments.h"
#include "auction/winner_determination.h"
#include "util/require.h"

namespace sfl::core {

using sfl::auction::Allocation;
using sfl::auction::Candidate;
using sfl::auction::MechanismResult;
using sfl::auction::Penalties;
using sfl::auction::RoundContext;
using sfl::auction::RoundObservation;
using sfl::auction::ScoreWeights;
using sfl::util::require;

LongTermOnlineVcgMechanism::LongTermOnlineVcgMechanism(const LtoVcgConfig& config)
    : config_(config), budget_queue_(config.per_round_budget) {
  require(config.v_weight > 0.0, "V weight must be > 0");
  require(config.per_round_budget > 0.0, "per-round budget must be > 0");
  if (!config.energy_rates.empty()) {
    for (const double rate : config.energy_rates) {
      require(rate >= 0.0, "energy rates must be >= 0");
    }
    sustainability_queues_.emplace(config.energy_rates);
    pending_energy_arrivals_.assign(config.energy_rates.size(), 0.0);
  }
  for (const double budget : config.budget_schedule) {
    require(budget > 0.0, "scheduled budgets must be > 0");
  }
}

ScoreWeights LongTermOnlineVcgMechanism::current_weights() const noexcept {
  return ScoreWeights{.value_weight = config_.v_weight,
                      .bid_weight = config_.v_weight + budget_queue_.backlog()};
}

double LongTermOnlineVcgMechanism::sustainability_backlog(
    sfl::auction::ClientId id) const {
  if (!sustainability_queues_.has_value()) return 0.0;
  return sustainability_queues_->backlog(id);
}

MechanismResult LongTermOnlineVcgMechanism::run_round(
    const std::vector<Candidate>& candidates, const RoundContext& context) {
  const ScoreWeights weights = current_weights();

  Penalties penalties;
  if (sustainability_queues_.has_value()) {
    penalties.reserve(candidates.size());
    for (const Candidate& c : candidates) {
      require(c.id < sustainability_queues_->size(),
              "candidate id outside the configured energy-rate table");
      penalties.push_back(sustainability_queues_->backlog(c.id) * c.energy_cost);
    }
  }

  const Allocation allocation = sfl::auction::select_top_m(
      candidates, weights, context.max_winners, penalties);

  std::vector<double> payments;
  if (config_.payment_rule == PaymentRule::kCriticalValue) {
    payments = sfl::auction::critical_payments(candidates, weights,
                                               context.max_winners, allocation,
                                               penalties);
  } else {
    payments = sfl::auction::vcg_payments(
        candidates, weights, context.max_winners, allocation,
        [](const std::vector<Candidate>& reduced, const ScoreWeights& w,
           std::size_t m, const Penalties& p) {
          return sfl::auction::select_top_m(reduced, w, m, p);
        },
        penalties);
  }

  // Remember round-scoped quantities for observe().
  last_bid_proxy_ = 0.0;
  if (sustainability_queues_.has_value()) {
    pending_energy_arrivals_.assign(sustainability_queues_->size(), 0.0);
  }
  for (const std::size_t index : allocation.selected) {
    last_bid_proxy_ += candidates[index].bid;
    if (sustainability_queues_.has_value()) {
      pending_energy_arrivals_[candidates[index].id] +=
          candidates[index].energy_cost;
    }
  }

  return sfl::auction::make_result(candidates, allocation, std::move(payments));
}

void LongTermOnlineVcgMechanism::observe(const RoundObservation& observation) {
  const double arrival = config_.queue_arrival == QueueArrivalMode::kRealizedPayment
                             ? observation.total_payment
                             : last_bid_proxy_;
  if (config_.budget_schedule.empty()) {
    budget_queue_.update(arrival);
  } else {
    const double service =
        config_.budget_schedule[observation.round % config_.budget_schedule.size()];
    budget_queue_.update_with_service(arrival, service);
  }
  if (sustainability_queues_.has_value()) {
    sustainability_queues_->update_all(pending_energy_arrivals_);
    pending_energy_arrivals_.assign(sustainability_queues_->size(), 0.0);
  }
}

}  // namespace sfl::core
