// Streamed/async settlement: decouples the round loop from mechanism
// settle() calls.
//
// AsyncSettler owns a bounded SettlementQueue in front of one mechanism.
// enqueue() returns immediately; a drain task on a util::ThreadPool
// (shared_pool() by default) applies queued settlements while the caller
// does other work (FL training, bid collection). flush() is the
// determinism barrier: once it returns, every settlement enqueued before
// the call has been applied, so fixed-seed trajectories are bit-identical
// to the synchronous path as long as the caller flushes before reading
// settlement-derived state and before the next run_round of an
// order-sensitive rule.
//
// Ordering contract (Mechanism::settlement_ordering):
//  - kRoundOrder: settlements are applied one at a time in FIFO (= round)
//    order. A single consumer mutex serializes appliers, and the queue is
//    FIFO, so the application order equals the enqueue order regardless of
//    which thread (pool worker, flushing caller, saturated producer)
//    happens to drain.
//  - kCommutative: the drain may coalesce everything currently queued into
//    ONE merged settlement (winners concatenated, totals summed, round =
//    latest) before the single settle() call — fewer virtual calls and
//    lock round-trips for rules that declared order-insensitivity.
//
// Progress is never hostage to pool scheduling: enqueue() on a full ring
// drains inline on the producer thread (backpressure), and flush() drains
// inline instead of waiting for a queued pool task, so a pool saturated
// with training work delays nothing and a 1-thread pool cannot deadlock.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <memory>
#include <mutex>
#include <string>

#include "auction/mechanism.h"
#include "core/settlement_queue.h"

namespace sfl::util {
class ThreadPool;
}  // namespace sfl::util

namespace sfl::core {

struct AsyncSettlerConfig {
  /// Bounded queue depth; a full ring applies backpressure by draining on
  /// the producer thread.
  std::size_t queue_capacity = 64;
  /// Worker pool for the drain tasks; nullptr selects util::shared_pool().
  sfl::util::ThreadPool* pool = nullptr;
};

class AsyncSettler {
 public:
  /// `mechanism` must outlive the settler. The settler calls
  /// mechanism.settle() from pool workers; the caller must not invoke the
  /// mechanism concurrently with un-flushed settlements in flight (flush()
  /// before run_round / state reads).
  explicit AsyncSettler(sfl::auction::Mechanism& mechanism,
                        AsyncSettlerConfig config = {});

  AsyncSettler(const AsyncSettler&) = delete;
  AsyncSettler& operator=(const AsyncSettler&) = delete;

  /// Drains remaining settlements, then waits for any in-flight drain
  /// task to leave. A pending settle() error is discarded (destructors
  /// cannot throw) — call flush() first if errors must be observed.
  ~AsyncSettler();

  /// Hands one settlement to the pipeline (swap semantics: `settlement` is
  /// left holding recycled storage, so one reused buffer makes the enqueue
  /// allocation-free). Returns immediately unless the ring is full, in
  /// which case the producer drains inline.
  void enqueue(sfl::auction::RoundSettlement& settlement);
  /// Convenience overload for temporaries (allocating path).
  void enqueue(sfl::auction::RoundSettlement&& settlement);

  /// Determinism barrier: applies (inline if needed) every settlement
  /// enqueued before the call, returning once mechanism state reflects all
  /// of them. If a settle() call threw on a pool worker since the last
  /// barrier, flush() rethrows that exception here — the sync path's
  /// catchable error surface, just deferred to the barrier (a throwing
  /// task would otherwise terminate the process per the pool contract).
  /// The failing settlement and everything queued behind it are discarded,
  /// mirroring the synchronous loop, which stops at the throwing settle();
  /// after the rethrow the settler accepts new settlements normally.
  void flush();

  /// Rounds applied via individual settle() calls plus rounds folded into
  /// merged commutative batches.
  [[nodiscard]] std::size_t settled_rounds() const noexcept {
    return settled_rounds_.load(std::memory_order_relaxed);
  }
  /// Number of merged settle() calls that covered more than one round
  /// (always 0 for kRoundOrder mechanisms).
  [[nodiscard]] std::size_t merged_batches() const noexcept {
    return merged_batches_.load(std::memory_order_relaxed);
  }
  /// Queue high-water mark (how far the pipeline ran ahead).
  [[nodiscard]] std::size_t max_queue_depth() const {
    return queue_.max_depth();
  }

 private:
  /// Schedules one drain task on the pool unless one is already pending.
  void schedule_drain();
  /// Applies everything currently in the queue. The consumer mutex makes
  /// appliers mutually exclusive, so settle() never runs concurrently and
  /// FIFO pops translate into in-order application.
  void drain();
  /// Caller holds consumer_mutex_. Folds `from` into merge_slot_.
  void merge_into_slot(sfl::auction::RoundSettlement& from, bool first);

  sfl::auction::Mechanism* mechanism_;
  sfl::util::ThreadPool* pool_;
  SettlementQueue queue_;
  const sfl::auction::SettlementOrdering ordering_;

  std::mutex consumer_mutex_;
  /// Guarded by consumer_mutex_: reused pop/merge buffers so steady-state
  /// drains allocate nothing.
  sfl::auction::RoundSettlement drain_slot_;
  sfl::auction::RoundSettlement merge_slot_;
  /// Guarded by consumer_mutex_: first exception a settle() threw while
  /// draining; surfaced (and cleared) by the next flush(). Draining stops
  /// while it is pending. The destructor discards it (cannot throw).
  std::exception_ptr pending_error_;

  std::atomic<bool> drain_pending_{false};
  /// Drain tasks handed to the pool that have not finished yet; the
  /// destructor waits for zero so a late task never touches a dead settler.
  std::mutex lifecycle_mutex_;
  std::condition_variable idle_;
  std::size_t tasks_in_flight_ = 0;  ///< guarded by lifecycle_mutex_
  std::atomic<std::size_t> settled_rounds_{0};
  std::atomic<std::size_t> merged_batches_{0};
};

/// Decorator that makes any registry mechanism settle asynchronously while
/// preserving its observable behavior: settle() enqueues onto an
/// AsyncSettler; every run_round entry point (and observe(), and flush())
/// first drains the queue, so the wrapped rule always scores the next round
/// against fully-settled state — trajectories stay bit-identical to the
/// synchronous path. Built by the registry under "lto-vcg-async" and by
/// MechanismConfig.lto.async_settle; the orchestrator wraps with it when
/// OrchestratorConfig.async_settle is set.
class AsyncSettlementMechanism final : public sfl::auction::Mechanism {
 public:
  explicit AsyncSettlementMechanism(
      std::unique_ptr<sfl::auction::Mechanism> inner,
      AsyncSettlerConfig config = {});

  [[nodiscard]] std::string name() const override { return inner_->name(); }

  [[nodiscard]] sfl::auction::MechanismResult run_round(
      const std::vector<sfl::auction::Candidate>& candidates,
      const sfl::auction::RoundContext& context) override;
  [[nodiscard]] sfl::auction::MechanismResult run_round(
      const sfl::auction::CandidateBatch& batch,
      const sfl::auction::RoundContext& context) override;
  void run_round_into(const sfl::auction::CandidateBatch& batch,
                      const sfl::auction::RoundContext& context,
                      sfl::auction::MechanismResult& out) override;

  /// Enqueues and returns; the inner settle() runs on the pool.
  void settle(const sfl::auction::RoundSettlement& settlement) override;
  void observe(const sfl::auction::RoundObservation& observation) override;

  [[nodiscard]] sfl::auction::SettlementOrdering settlement_ordering()
      const noexcept override {
    return inner_->settlement_ordering();
  }
  /// Drains this decorator's queue, then the inner mechanism's (stacked
  /// async decorators: the outer drain lands settlements in the inner
  /// queue, so the barrier must forward to hold end to end).
  void flush() override {
    settler_.flush();
    inner_->flush();
  }
  [[nodiscard]] sfl::auction::Mechanism* underlying() noexcept override {
    return inner_->underlying();
  }
  [[nodiscard]] bool is_truthful() const noexcept override {
    return inner_->is_truthful();
  }

  [[nodiscard]] const AsyncSettler& settler() const noexcept {
    return settler_;
  }

 private:
  // Order matters: settler_ is destroyed (and flushed) before inner_ dies.
  std::unique_ptr<sfl::auction::Mechanism> inner_;
  AsyncSettler settler_;
  /// Reused copy buffer: settle() takes a const ref, so the payload is
  /// copied once into this slot and swapped into the ring (allocation-free
  /// after warm-up).
  sfl::auction::RoundSettlement enqueue_slot_;
};

}  // namespace sfl::core
