#include "core/market_simulation.h"

#include <optional>

#include "core/async_settler.h"
#include "core/long_term_online_vcg.h"
#include "util/require.h"

namespace sfl::core {

using sfl::auction::CandidateBatch;
using sfl::auction::MechanismResult;
using sfl::auction::RoundContext;
using sfl::auction::RoundSettlement;
using sfl::auction::WinnerSettlement;
using sfl::util::require;

MarketResult run_market(sfl::auction::Mechanism& mechanism, const MarketSpec& spec,
                        const StrategyTable& strategies) {
  require(spec.num_clients > 0, "market needs clients");
  require(spec.rounds > 0, "market needs at least one round");
  require(strategies.empty() || strategies.size() == spec.num_clients,
          "strategies must be empty or one per client");

  sfl::util::Rng rng(spec.seed);
  sfl::util::Rng value_rng = rng.split();
  sfl::util::Rng cost_rng = rng.split();
  sfl::util::Rng bid_rng = rng.split();

  // Static per-client values (data-size surrogate).
  std::vector<double> values(spec.num_clients);
  for (auto& v : values) {
    v = spec.valuation_scale * value_rng.lognormal(0.0, spec.value_sigma);
  }

  econ::CostModel cost_model(spec.num_clients, spec.cost, {}, cost_rng);
  econ::UtilityLedger ledger(spec.num_clients);
  econ::BudgetTracker budget(spec.per_round_budget);
  const econ::TruthfulStrategy truthful;

  MarketResult result;
  result.mechanism_name = mechanism.name();
  result.rounds = spec.rounds;
  result.welfare_series.reserve(spec.rounds);
  result.payment_series.reserve(spec.rounds);
  result.cumulative_payment_series.reserve(spec.rounds);

  auto* lto =
      dynamic_cast<LongTermOnlineVcgMechanism*>(mechanism.underlying());
  // Pipelined distributed rounds engage below for a bare (undecorated) LTO
  // mechanism with dist_pipeline_depth > 1.
  const bool pipelined = lto != nullptr && lto->pipeline_depth() > 1 &&
                         mechanism.underlying() == &mechanism;

  // Streamed settlement: the settler applies settle() on the shared pool;
  // the flush barrier at the top of each round keeps stateful rules
  // scoring against fully-settled queues — bit-identical trajectories.
  // A mechanism that is already an async decorator (underlying() reaches
  // through it) streams on its own; stacking a second queue would double
  // every copy and drain for zero extra overlap. The pipelined loop
  // settles synchronously instead (see below).
  std::optional<AsyncSettler> settler;
  if (spec.async_settle && !pipelined && mechanism.underlying() == &mechanism) {
    settler.emplace(mechanism);
  }

  // Round-pipeline buffers reused across rounds (zero-allocation steady
  // state once capacities settle).
  MechanismResult outcome;
  RoundSettlement settlement;

  // SoA slate for one round: every client bids, so batch row i is client i.
  // Cost and bid draws happen in strict round order on their dedicated RNG
  // streams, so the slate sequence is identical whether rounds execute one
  // at a time or feed the pipelined mechanism ahead of retirement.
  const auto build_batch = [&](CandidateBatch& batch,
                               const std::vector<double>& costs,
                               std::size_t round) {
    batch.clear();
    for (std::size_t i = 0; i < spec.num_clients; ++i) {
      const econ::BiddingStrategy& strategy =
          (!strategies.empty() && strategies[i] != nullptr) ? *strategies[i]
                                                            : truthful;
      batch.emplace(i, values[i], strategy.bid(costs[i], round, bid_rng), 1.0);
    }
  };

  // Records one completed round (called in strict round order) and leaves
  // its settlement in `settlement` for the caller to report.
  const auto record_round = [&](std::size_t round, const CandidateBatch& batch,
                                const std::vector<double>& costs) {
    double round_welfare = 0.0;
    settlement.round = round;
    settlement.total_payment = 0.0;
    settlement.winners.clear();
    settlement.winners.reserve(outcome.winners.size());
    for (std::size_t w = 0; w < outcome.winners.size(); ++w) {
      const std::size_t client = outcome.winners[w];
      ledger.record(econ::LedgerEntry{.round = round,
                                      .client = client,
                                      .value = values[client],
                                      .payment = outcome.payments[w],
                                      .true_cost = costs[client]});
      round_welfare += values[client] - costs[client];
      settlement.winners.push_back(
          WinnerSettlement{.client = client,
                           .bid = batch.bids()[client],
                           .payment = outcome.payments[w],
                           .energy_cost = 1.0,
                           .dropped = false});
    }
    const double round_payment = outcome.total_payment();
    budget.record_round(round_payment);
    settlement.total_payment = round_payment;
    result.welfare_series.push_back(round_welfare);
    result.payment_series.push_back(round_payment);
    result.cumulative_payment_series.push_back(budget.cumulative_payment());
  };

  // Pipelined distributed rounds: the mechanism is fed up to `depth` rounds
  // ahead on per-round batch lanes, and completed rounds retire + settle in
  // strict round order — span dispatch for round t+1 overlaps round t's
  // straggler waits while the settled trajectory stays bit-identical to the
  // synchronous loop (the pipelined soak suite enforces exact equality).
  // Settlement is synchronous here by design: the settle is the event that
  // validates the next round's speculative dispatch, so it cannot trail on
  // the async settler (spec.async_settle is ignored on this path).
  if (pipelined) {
    struct RoundLane {
      CandidateBatch batch;
      std::vector<double> costs;
      std::size_t round = 0;
    };
    const std::size_t depth = std::min(lto->pipeline_depth(), spec.rounds);
    std::vector<RoundLane> lanes(depth);
    for (RoundLane& lane : lanes) lane.batch.reserve(spec.num_clients);

    std::size_t next_round = 0;
    const auto submit_next = [&] {
      RoundLane& lane = lanes[next_round % depth];
      lane.round = next_round;
      lane.costs = cost_model.draw_round(cost_rng);
      build_batch(lane.batch, lane.costs, next_round);
      RoundContext context;
      context.round = next_round;
      context.max_winners = spec.max_winners;
      context.per_round_budget = spec.per_round_budget;
      lto->submit_round(lane.batch, context);
      ++next_round;
    };

    while (next_round < depth) submit_next();
    for (std::size_t round = 0; round < spec.rounds; ++round) {
      const RoundLane& lane = lanes[round % depth];
      outcome.winners.clear();
      outcome.payments.clear();
      lto->retire_round_into(outcome);
      record_round(lane.round, lane.batch, lane.costs);
      mechanism.settle(settlement);
      if (next_round < spec.rounds) submit_next();
    }
  } else {
    CandidateBatch batch;
    batch.reserve(spec.num_clients);
    for (std::size_t round = 0; round < spec.rounds; ++round) {
      if (settler.has_value()) settler->flush();
      const std::vector<double> costs = cost_model.draw_round(cost_rng);
      build_batch(batch, costs, round);

      RoundContext context;
      context.round = round;
      context.max_winners = spec.max_winners;
      context.per_round_budget = spec.per_round_budget;

      outcome.winners.clear();
      outcome.payments.clear();
      mechanism.run_round_into(batch, context, outcome);
      record_round(round, batch, costs);
      if (settler.has_value()) {
        settler->enqueue(settlement);  // swap semantics: storage is recycled
      } else {
        mechanism.settle(settlement);
      }
    }
  }

  // Final barrier: the last round's settlement must land before queue
  // diagnostics are read (covers both the local settler and mechanisms
  // that are themselves async decorators).
  if (settler.has_value()) settler->flush();
  mechanism.flush();

  result.cumulative_welfare = ledger.social_welfare();
  result.time_average_welfare =
      result.cumulative_welfare / static_cast<double>(spec.rounds);
  result.cumulative_payment = budget.cumulative_payment();
  result.average_payment = budget.average_payment();
  result.cumulative_budget_violation = budget.cumulative_violation();
  result.peak_budget_violation = budget.peak_violation();
  result.violation_round_fraction = budget.violation_round_fraction();
  result.client_utilities = ledger.utility_vector();
  result.participation_counts = ledger.participation_vector();
  result.ir_fraction = ledger.individually_rational_fraction();
  if (lto != nullptr) {
    result.final_budget_backlog = lto->budget_backlog();
    result.average_budget_backlog = lto->average_budget_backlog();
  }
  return result;
}

double deviation_utility(sfl::auction::Mechanism& mechanism, const MarketSpec& spec,
                         std::size_t deviator, double misreport_factor) {
  require(deviator < spec.num_clients, "deviator id out of range");
  StrategyTable strategies(spec.num_clients);
  for (auto& s : strategies) {
    s = std::make_shared<econ::TruthfulStrategy>();
  }
  strategies[deviator] =
      std::make_shared<econ::ScaledMisreportStrategy>(misreport_factor);
  const MarketResult result = run_market(mechanism, spec, strategies);
  return result.client_utilities[deviator];
}

}  // namespace sfl::core
