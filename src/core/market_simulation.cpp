#include "core/market_simulation.h"

#include <algorithm>
#include <optional>

#include "auction/market_batch.h"
#include "auction/registry.h"
#include "auction/sharded_wdp.h"
#include "core/async_settler.h"
#include "core/long_term_online_vcg.h"
#include "util/require.h"

namespace sfl::core {

using sfl::auction::CandidateBatch;
using sfl::auction::MechanismResult;
using sfl::auction::RoundContext;
using sfl::auction::RoundSettlement;
using sfl::auction::WinnerSettlement;
using sfl::util::require;

MarketResult run_market(sfl::auction::Mechanism& mechanism, const MarketSpec& spec,
                        const StrategyTable& strategies) {
  require(spec.num_clients > 0, "market needs clients");
  require(spec.rounds > 0, "market needs at least one round");
  require(strategies.empty() || strategies.size() == spec.num_clients,
          "strategies must be empty or one per client");
  if (spec.online.enabled) {
    require(spec.online.arrival_window >= 0.0 &&
                spec.online.arrival_window <= 1.0,
            "online arrival window must be in [0, 1]");
    require(spec.online.min_sojourn_fraction > 0.0 &&
                spec.online.min_sojourn_fraction <=
                    spec.online.max_sojourn_fraction,
            "online sojourn fractions need 0 < min <= max");
    require(spec.online.min_win_budget <= spec.online.max_win_budget,
            "online win budget needs min <= max");
  }

  sfl::util::Rng rng(spec.seed);
  sfl::util::Rng value_rng = rng.split();
  sfl::util::Rng cost_rng = rng.split();
  sfl::util::Rng bid_rng = rng.split();

  // Online arrival/departure windows and win budgets, drawn from a stream
  // split AFTER the value/cost/bid streams so enabling the scenario never
  // perturbs the stationary (online.enabled == false) trajectories.
  std::vector<std::size_t> arrival(spec.num_clients, 0);
  std::vector<std::size_t> departure(spec.num_clients, spec.rounds);
  std::vector<std::size_t> win_budget(spec.num_clients, 0);  // 0 = uncapped
  std::vector<std::size_t> wins_used(spec.num_clients, 0);
  if (spec.online.enabled) {
    sfl::util::Rng online_rng = rng.split();
    const double horizon = static_cast<double>(spec.rounds);
    for (std::size_t i = 0; i < spec.num_clients; ++i) {
      arrival[i] = static_cast<std::size_t>(
          online_rng.uniform(0.0, spec.online.arrival_window * horizon));
      const double sojourn_rounds =
          online_rng.uniform(spec.online.min_sojourn_fraction,
                             spec.online.max_sojourn_fraction) *
          horizon;
      departure[i] = std::min(
          spec.rounds,
          arrival[i] + std::max<std::size_t>(
                           1, static_cast<std::size_t>(sojourn_rounds)));
      if (spec.online.max_win_budget > 0) {
        const auto span = static_cast<double>(spec.online.max_win_budget -
                                              spec.online.min_win_budget);
        win_budget[i] =
            std::min(spec.online.max_win_budget,
                     spec.online.min_win_budget +
                         static_cast<std::size_t>(
                             online_rng.uniform(0.0, span + 1.0)));
      }
    }
  }

  // Static per-client values (data-size surrogate).
  std::vector<double> values(spec.num_clients);
  for (auto& v : values) {
    v = spec.valuation_scale * value_rng.lognormal(0.0, spec.value_sigma);
  }

  econ::CostModel cost_model(spec.num_clients, spec.cost, {}, cost_rng);
  econ::UtilityLedger ledger(spec.num_clients);
  econ::BudgetTracker budget(spec.per_round_budget);
  const econ::TruthfulStrategy truthful;

  MarketResult result;
  result.mechanism_name = mechanism.name();
  result.rounds = spec.rounds;
  result.welfare_series.reserve(spec.rounds);
  result.payment_series.reserve(spec.rounds);
  result.cumulative_payment_series.reserve(spec.rounds);

  auto* lto =
      dynamic_cast<LongTermOnlineVcgMechanism*>(mechanism.underlying());
  // Pipelined distributed rounds engage below for a bare (undecorated) LTO
  // mechanism with dist_pipeline_depth > 1.
  const bool pipelined = lto != nullptr && lto->pipeline_depth() > 1 &&
                         mechanism.underlying() == &mechanism;
  // Presence next round depends on this round's settled wins, so slates
  // cannot be built speculatively ahead of retirement.
  require(!spec.online.enabled || !pipelined,
          "online arrival is incompatible with pipelined distributed rounds");

  // Streamed settlement: the settler applies settle() on the shared pool;
  // the flush barrier at the top of each round keeps stateful rules
  // scoring against fully-settled queues — bit-identical trajectories.
  // A mechanism that is already an async decorator (underlying() reaches
  // through it) streams on its own; stacking a second queue would double
  // every copy and drain for zero extra overlap. The pipelined loop
  // settles synchronously instead (see below).
  std::optional<AsyncSettler> settler;
  if (spec.async_settle && !pipelined && mechanism.underlying() == &mechanism) {
    settler.emplace(mechanism);
  }

  // Round-pipeline buffers reused across rounds (zero-allocation steady
  // state once capacities settle).
  MechanismResult outcome;
  RoundSettlement settlement;

  // SoA slate for one round. In the stationary market every client bids, so
  // batch row i is client i; under online arrival absent (or budget-spent)
  // clients are skipped and `row_of` maps client ids back to their slate
  // rows (kNoRow when absent). Cost and bid draws happen in strict round
  // order on their dedicated RNG streams, so the slate sequence is identical
  // whether rounds execute one at a time or feed the pipelined mechanism
  // ahead of retirement (pipelining excludes online mode, so row_of is the
  // identity whenever lanes run ahead).
  constexpr std::size_t kNoRow = static_cast<std::size_t>(-1);
  std::vector<std::size_t> row_of(spec.num_clients, kNoRow);
  const auto present = [&](std::size_t client, std::size_t round) {
    if (!spec.online.enabled) return true;
    if (round < arrival[client] || round >= departure[client]) return false;
    return win_budget[client] == 0 || wins_used[client] < win_budget[client];
  };
  const auto build_batch = [&](CandidateBatch& batch,
                               const std::vector<double>& costs,
                               std::size_t round) {
    batch.clear();
    for (std::size_t i = 0; i < spec.num_clients; ++i) {
      if (!present(i, round)) {
        row_of[i] = kNoRow;
        continue;
      }
      row_of[i] = batch.size();
      const econ::BiddingStrategy& strategy =
          (!strategies.empty() && strategies[i] != nullptr) ? *strategies[i]
                                                            : truthful;
      batch.emplace(i, values[i], strategy.bid(costs[i], round, bid_rng), 1.0);
    }
  };

  // Records one completed round (called in strict round order) and leaves
  // its settlement in `settlement` for the caller to report.
  const auto record_round = [&](std::size_t round, const CandidateBatch& batch,
                                const std::vector<double>& costs) {
    double round_welfare = 0.0;
    settlement.round = round;
    settlement.total_payment = 0.0;
    settlement.winners.clear();
    settlement.winners.reserve(outcome.winners.size());
    for (std::size_t w = 0; w < outcome.winners.size(); ++w) {
      const std::size_t client = outcome.winners[w];
      ledger.record(econ::LedgerEntry{.round = round,
                                      .client = client,
                                      .value = values[client],
                                      .payment = outcome.payments[w],
                                      .true_cost = costs[client]});
      round_welfare += values[client] - costs[client];
      ++wins_used[client];
      settlement.winners.push_back(
          WinnerSettlement{.client = client,
                           .bid = batch.bids()[row_of[client]],
                           .payment = outcome.payments[w],
                           .energy_cost = 1.0,
                           .dropped = false});
    }
    if (spec.online.enabled) {
      result.active_clients_series.push_back(static_cast<double>(batch.size()));
    }
    const double round_payment = outcome.total_payment();
    budget.record_round(round_payment);
    settlement.total_payment = round_payment;
    result.welfare_series.push_back(round_welfare);
    result.payment_series.push_back(round_payment);
    result.cumulative_payment_series.push_back(budget.cumulative_payment());
  };

  // Pipelined distributed rounds: the mechanism is fed up to `depth` rounds
  // ahead on per-round batch lanes, and completed rounds retire + settle in
  // strict round order — span dispatch for round t+1 overlaps round t's
  // straggler waits while the settled trajectory stays bit-identical to the
  // synchronous loop (the pipelined soak suite enforces exact equality).
  // Settlement is synchronous here by design: the settle is the event that
  // validates the next round's speculative dispatch, so it cannot trail on
  // the async settler (spec.async_settle is ignored on this path).
  if (pipelined) {
    struct RoundLane {
      CandidateBatch batch;
      std::vector<double> costs;
      std::size_t round = 0;
    };
    const std::size_t depth = std::min(lto->pipeline_depth(), spec.rounds);
    std::vector<RoundLane> lanes(depth);
    for (RoundLane& lane : lanes) lane.batch.reserve(spec.num_clients);

    std::size_t next_round = 0;
    const auto submit_next = [&] {
      RoundLane& lane = lanes[next_round % depth];
      lane.round = next_round;
      lane.costs = cost_model.draw_round(cost_rng);
      build_batch(lane.batch, lane.costs, next_round);
      RoundContext context;
      context.round = next_round;
      context.max_winners = spec.max_winners;
      context.per_round_budget = spec.per_round_budget;
      lto->submit_round(lane.batch, context);
      ++next_round;
    };

    while (next_round < depth) submit_next();
    for (std::size_t round = 0; round < spec.rounds; ++round) {
      const RoundLane& lane = lanes[round % depth];
      outcome.winners.clear();
      outcome.payments.clear();
      lto->retire_round_into(outcome);
      record_round(lane.round, lane.batch, lane.costs);
      mechanism.settle(settlement);
      if (next_round < spec.rounds) submit_next();
    }
  } else {
    CandidateBatch batch;
    batch.reserve(spec.num_clients);
    for (std::size_t round = 0; round < spec.rounds; ++round) {
      if (settler.has_value()) settler->flush();
      const std::vector<double> costs = cost_model.draw_round(cost_rng);
      build_batch(batch, costs, round);

      RoundContext context;
      context.round = round;
      context.max_winners = spec.max_winners;
      context.per_round_budget = spec.per_round_budget;

      outcome.winners.clear();
      outcome.payments.clear();
      if (batch.empty()) {
        // Online gap round with nobody present: skip the mechanism's WDP
        // but still record and settle the (empty) round, so budget-queue
        // service keeps replenishing on the wall clock.
      } else {
        mechanism.run_round_into(batch, context, outcome);
      }
      record_round(round, batch, costs);
      if (settler.has_value()) {
        settler->enqueue(settlement);  // swap semantics: storage is recycled
      } else {
        mechanism.settle(settlement);
      }
    }
  }

  // Final barrier: the last round's settlement must land before queue
  // diagnostics are read (covers both the local settler and mechanisms
  // that are themselves async decorators).
  if (settler.has_value()) settler->flush();
  mechanism.flush();

  result.cumulative_welfare = ledger.social_welfare();
  result.time_average_welfare =
      result.cumulative_welfare / static_cast<double>(spec.rounds);
  result.cumulative_payment = budget.cumulative_payment();
  result.average_payment = budget.average_payment();
  result.cumulative_budget_violation = budget.cumulative_violation();
  result.peak_budget_violation = budget.peak_violation();
  result.violation_round_fraction = budget.violation_round_fraction();
  result.client_utilities = ledger.utility_vector();
  result.participation_counts = ledger.participation_vector();
  result.ir_fraction = ledger.individually_rational_fraction();
  if (lto != nullptr) {
    result.final_budget_backlog = lto->budget_backlog();
    result.average_budget_backlog = lto->average_budget_backlog();
  }
  if (spec.online.enabled) {
    for (std::size_t i = 0; i < spec.num_clients; ++i) {
      if (win_budget[i] > 0 && wins_used[i] >= win_budget[i]) {
        ++result.budget_exhausted_clients;
      }
    }
  }
  return result;
}

double deviation_utility(sfl::auction::Mechanism& mechanism, const MarketSpec& spec,
                         std::size_t deviator, double misreport_factor) {
  require(deviator < spec.num_clients, "deviator id out of range");
  StrategyTable strategies(spec.num_clients);
  for (auto& s : strategies) {
    s = std::make_shared<econ::TruthfulStrategy>();
  }
  strategies[deviator] =
      std::make_shared<econ::ScaledMisreportStrategy>(misreport_factor);
  const MarketResult result = run_market(mechanism, spec, strategies);
  return result.client_utilities[deviator];
}

MultiRequesterResult run_multi_requester_market(const MultiRequesterSpec& spec,
                                                const std::string& mechanism) {
  require(spec.requesters > 0, "multi-requester market needs requesters");
  require(spec.num_clients > 0, "market needs clients");
  require(spec.rounds > 0, "market needs at least one round");
  require(spec.requester_value_spread >= 0.0,
          "requester value spread must be >= 0");

  sfl::util::Rng rng(spec.seed);
  sfl::util::Rng value_rng = rng.split();
  sfl::util::Rng cost_rng = rng.split();

  // Shared client population: one base mass per client, scaled per
  // requester — everyone competes for the same people.
  std::vector<double> mass(spec.num_clients);
  for (auto& m : mass) m = value_rng.lognormal(0.0, spec.value_sigma);

  econ::CostModel cost_model(spec.num_clients, spec.cost, {}, cost_rng);

  // One LTO mechanism per requester (independent Q/Z queues and budget),
  // built from the registry key so execution variants can be swept. Each
  // must expose the external-round API: winner determination happens in the
  // shared exclusive engine pass below, not inside the mechanism.
  sfl::auction::MechanismConfig mconfig;
  mconfig.num_clients = spec.num_clients;
  mconfig.per_round_budget = spec.per_round_budget;
  mconfig.seed = spec.seed;
  std::vector<std::unique_ptr<sfl::auction::Mechanism>> owners;
  std::vector<LongTermOnlineVcgMechanism*> requesters;
  owners.reserve(spec.requesters);
  requesters.reserve(spec.requesters);
  for (std::size_t r = 0; r < spec.requesters; ++r) {
    owners.push_back(sfl::auction::build_mechanism(mechanism, mconfig));
    auto* requester =
        dynamic_cast<LongTermOnlineVcgMechanism*>(owners.back()->underlying());
    require(requester != nullptr && requester->supports_external_rounds(),
            "multi-requester market requires an LTO mechanism supporting "
            "external rounds (critical-value payments, no pipelining)");
    requesters.push_back(requester);
  }

  // The host engine clearing all requesters' rounds in one exclusive fused
  // pass (bit-identical at every shard count; 1 = the serial reference).
  const sfl::auction::ShardedWdp engine(
      sfl::auction::ShardedWdpConfig{.shards = spec.shards});

  MultiRequesterResult result;
  result.rounds = spec.rounds;
  result.requesters = spec.requesters;
  result.requester_welfare.assign(spec.requesters, 0.0);
  result.requester_payment.assign(spec.requesters, 0.0);
  result.requester_backlog.assign(spec.requesters, 0.0);
  result.requester_wins.assign(spec.requesters, 0);
  result.welfare_series.reserve(spec.rounds);
  result.payment_series.reserve(spec.rounds);
  result.queue_series.reserve(spec.rounds);

  // Reused round buffers: per-requester slates/penalties, the exclusive
  // mega-batch, and the settlement pipeline (allocation-free at steady
  // state once capacities settle).
  std::vector<CandidateBatch> slates(spec.requesters);
  std::vector<sfl::auction::Penalties> penalties(spec.requesters);
  for (auto& s : slates) s.reserve(spec.num_clients);
  sfl::auction::MarketBatch mega;
  mega.reserve(spec.requesters, spec.requesters * spec.num_clients);
  sfl::auction::MarketBatchResult batch_result;
  sfl::auction::RoundScratch engine_scratch;
  MechanismResult outcome;
  RoundSettlement settlement;
  std::vector<unsigned char> won_this_round(spec.num_clients, 0);

  for (std::size_t round = 0; round < spec.rounds; ++round) {
    const std::vector<double> costs = cost_model.draw_round(cost_rng);

    // Phase 1: every requester exports its round inputs against its CURRENT
    // queue state (pure observation — no round opens until commit).
    mega.clear();
    mega.set_exclusive(true);
    for (std::size_t r = 0; r < spec.requesters; ++r) {
      CandidateBatch& slate = slates[r];
      slate.clear();
      const double scale =
          spec.valuation_scale *
          (1.0 + static_cast<double>(r) * spec.requester_value_spread);
      for (std::size_t i = 0; i < spec.num_clients; ++i) {
        slate.emplace(i, scale * mass[i], costs[i], 1.0);  // truthful bids
      }
      const sfl::auction::ScoreWeights weights =
          requesters[r]->external_round_inputs(slate, penalties[r]);
      mega.append_market(slate, spec.max_winners, weights, penalties[r]);
    }

    // Phase 2: one exclusive clear across all requesters' markets.
    engine.run_rounds(mega, batch_result, engine_scratch);

    // Phase 3: commit + settle each requester (synchronously, in requester
    // order — settling r never touches r' != r's queues, so the inputs
    // exported in phase 1 stay valid for every later commit).
    double round_welfare = 0.0;
    double round_payment = 0.0;
    double round_queue = 0.0;
    std::fill(won_this_round.begin(), won_this_round.end(), 0);
    for (std::size_t r = 0; r < spec.requesters; ++r) {
      outcome.winners.clear();
      outcome.payments.clear();
      requesters[r]->commit_external_round(slates[r], batch_result.selected(r),
                                           batch_result.payments(r), outcome);

      settlement.round = round;
      settlement.winners.clear();
      settlement.winners.reserve(outcome.winners.size());
      for (std::size_t w = 0; w < outcome.winners.size(); ++w) {
        const std::size_t client = outcome.winners[w];
        if (won_this_round[client] != 0) ++result.duplicate_wins;
        won_this_round[client] = 1;
        // Slate row i is client i within each requester's market.
        result.requester_welfare[r] += slates[r].values()[client] - costs[client];
        round_welfare += slates[r].values()[client] - costs[client];
        settlement.winners.push_back(
            WinnerSettlement{.client = client,
                             .bid = costs[client],
                             .payment = outcome.payments[w],
                             .energy_cost = 1.0,
                             .dropped = false});
      }
      settlement.total_payment = outcome.total_payment();
      result.requester_payment[r] += settlement.total_payment;
      result.requester_wins[r] += outcome.winners.size();
      round_payment += settlement.total_payment;
      requesters[r]->settle(settlement);
      round_queue += requesters[r]->budget_backlog();
    }
    result.welfare_series.push_back(round_welfare);
    result.payment_series.push_back(round_payment);
    result.queue_series.push_back(round_queue);
  }

  for (std::size_t r = 0; r < spec.requesters; ++r) {
    result.requester_backlog[r] = requesters[r]->budget_backlog();
  }
  return result;
}

}  // namespace sfl::core
