#include "core/adaptive_market.h"

#include <cmath>

#include "econ/cost_model.h"
#include "util/require.h"

namespace sfl::core {

using sfl::auction::CandidateBatch;
using sfl::auction::MechanismResult;
using sfl::auction::RoundContext;
using sfl::auction::RoundSettlement;
using sfl::auction::WinnerSettlement;
using sfl::util::require;

AdaptiveMarketResult run_adaptive_market(sfl::auction::Mechanism& mechanism,
                                         const MarketSpec& spec,
                                         const AdaptiveMarketConfig& config) {
  require(spec.num_clients > 0, "market needs clients");
  require(spec.rounds > 0, "market needs at least one round");
  require(config.sample_every > 0, "sample_every must be > 0");

  // Environment drawn exactly like run_market for comparability.
  sfl::util::Rng rng(spec.seed);
  sfl::util::Rng value_rng = rng.split();
  sfl::util::Rng cost_rng = rng.split();
  sfl::util::Rng learner_rng = rng.split();

  std::vector<double> values(spec.num_clients);
  for (auto& v : values) {
    v = spec.valuation_scale * value_rng.lognormal(0.0, spec.value_sigma);
  }
  econ::CostModel cost_model(spec.num_clients, spec.cost, {}, cost_rng);

  std::vector<econ::Exp3BiddingLearner> learners;
  learners.reserve(spec.num_clients);
  for (std::size_t i = 0; i < spec.num_clients; ++i) {
    learners.emplace_back(config.learner, learner_rng());
  }

  AdaptiveMarketResult result;
  result.mechanism_name = mechanism.name();
  result.rounds = spec.rounds;
  result.sample_every = config.sample_every;

  const auto population_mean_factor = [&]() {
    double mean = 0.0;
    for (const auto& learner : learners) mean += learner.expected_factor();
    return mean / static_cast<double>(learners.size());
  };
  result.initial_mean_factor = population_mean_factor();
  result.mean_factor_series.push_back(result.initial_mean_factor);

  std::vector<double> factors(spec.num_clients, 1.0);
  double window_winner_factor_sum = 0.0;
  double window_winner_count = 0.0;
  for (std::size_t round = 0; round < spec.rounds; ++round) {
    const std::vector<double> costs = cost_model.draw_round(cost_rng);

    CandidateBatch batch;
    batch.reserve(spec.num_clients);
    for (std::size_t i = 0; i < spec.num_clients; ++i) {
      factors[i] = learners[i].choose_factor();
      batch.emplace(i, values[i], factors[i] * costs[i], 1.0);
    }

    RoundContext context;
    context.round = round;
    context.max_winners = spec.max_winners;
    context.per_round_budget = spec.per_round_budget;
    const MechanismResult outcome = mechanism.run_round(batch, context);

    for (std::size_t i = 0; i < spec.num_clients; ++i) {
      const double utility =
          outcome.won(i) ? outcome.payment_for(i) - costs[i] : 0.0;
      learners[i].observe_utility(utility);
      if (outcome.won(i)) {
        result.cumulative_welfare += values[i] - costs[i];
        window_winner_factor_sum += factors[i];
        window_winner_count += 1.0;
      }
    }
    result.cumulative_payment += outcome.total_payment();

    RoundSettlement settlement;
    settlement.round = round;
    settlement.total_payment = outcome.total_payment();
    settlement.winners.reserve(outcome.winners.size());
    for (std::size_t w = 0; w < outcome.winners.size(); ++w) {
      settlement.winners.push_back(
          WinnerSettlement{.client = outcome.winners[w],
                           .bid = batch.bids()[outcome.winners[w]],
                           .payment = outcome.payments[w],
                           .energy_cost = 1.0,
                           .dropped = false});
    }
    mechanism.settle(settlement);

    if ((round + 1) % config.sample_every == 0) {
      result.mean_factor_series.push_back(population_mean_factor());
      result.winner_factor_series.push_back(
          window_winner_count > 0.0
              ? window_winner_factor_sum / window_winner_count
              : 1.0);
      window_winner_factor_sum = 0.0;
      window_winner_count = 0.0;
    }
  }
  if (!result.winner_factor_series.empty()) {
    result.final_winner_factor = result.winner_factor_series.back();
  }

  result.final_mean_factor = population_mean_factor();
  std::size_t truthful_modal = 0;
  for (const auto& learner : learners) {
    if (std::abs(learner.modal_factor() - 1.0) < 1e-12) ++truthful_modal;
  }
  result.truthful_modal_fraction =
      static_cast<double>(truthful_modal) / static_cast<double>(learners.size());
  return result;
}

}  // namespace sfl::core
