#include "core/settlement_queue.h"

#include <stdexcept>
#include <utility>

#include "util/require.h"

namespace sfl::core {

using sfl::auction::RoundSettlement;

SettlementQueue::SettlementQueue(std::size_t capacity) {
  sfl::util::require(capacity >= 1, "settlement queue capacity must be >= 1");
  ring_.resize(capacity);
}

void SettlementQueue::push_locked(RoundSettlement& settlement) {
  const std::size_t tail = (head_ + count_) % ring_.size();
  std::swap(ring_[tail], settlement);
  ++count_;
  if (count_ > max_depth_) max_depth_ = count_;
}

void SettlementQueue::pop_locked(RoundSettlement& out) {
  std::swap(out, ring_[head_]);
  head_ = (head_ + 1) % ring_.size();
  --count_;
}

void SettlementQueue::push(RoundSettlement& settlement) {
  {
    std::unique_lock lock(mutex_);
    not_full_.wait(lock, [this] { return closed_ || count_ < ring_.size(); });
    if (closed_) throw std::logic_error("push on a closed settlement queue");
    push_locked(settlement);
  }
  not_empty_.notify_one();
}

bool SettlementQueue::try_push(RoundSettlement& settlement) {
  {
    const std::scoped_lock lock(mutex_);
    if (closed_) throw std::logic_error("push on a closed settlement queue");
    if (count_ == ring_.size()) return false;
    push_locked(settlement);
  }
  not_empty_.notify_one();
  return true;
}

bool SettlementQueue::pop(RoundSettlement& out) {
  {
    std::unique_lock lock(mutex_);
    not_empty_.wait(lock, [this] { return closed_ || count_ > 0; });
    if (count_ == 0) return false;  // closed and drained
    pop_locked(out);
  }
  not_full_.notify_one();
  return true;
}

bool SettlementQueue::try_pop(RoundSettlement& out) {
  {
    const std::scoped_lock lock(mutex_);
    if (count_ == 0) return false;
    pop_locked(out);
  }
  not_full_.notify_one();
  return true;
}

void SettlementQueue::close() {
  {
    const std::scoped_lock lock(mutex_);
    closed_ = true;
  }
  not_full_.notify_all();
  not_empty_.notify_all();
}

std::size_t SettlementQueue::size() const {
  const std::scoped_lock lock(mutex_);
  return count_;
}

std::size_t SettlementQueue::max_depth() const {
  const std::scoped_lock lock(mutex_);
  return max_depth_;
}

}  // namespace sfl::core
