// Auction-only market simulation (no FL training).
//
// For economics-side experiments (budget tracking E3, truthfulness E4/E5,
// Lyapunov V tradeoff E6, regret E10) the learning loop is irrelevant and
// would dominate runtime. This simulation runs the mechanism against the
// stochastic cost process alone, tracking welfare, payments, queues, and
// per-client utilities over thousands of rounds.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "auction/mechanism.h"
#include "econ/bidding.h"
#include "econ/budget_tracker.h"
#include "econ/cost_model.h"
#include "econ/ledger.h"

namespace sfl::core {

struct MarketSpec {
  std::size_t num_clients = 100;
  std::size_t rounds = 1000;
  std::size_t max_winners = 10;
  double per_round_budget = 5.0;
  /// Client values: v_i = valuation_scale * mass_i with per-client mass
  /// drawn once from lognormal(0, value_sigma) (data-size surrogate).
  double valuation_scale = 2.0;
  double value_sigma = 0.35;
  econ::CostModelSpec cost{};
  /// Streamed settlement: route mechanism.settle() through a
  /// core::AsyncSettler on the shared pool, with a flush barrier before
  /// each run_round and before final queue reads — results are
  /// bit-identical to the synchronous path (the async determinism suite
  /// enforces this for every registry mechanism). Ignored when the
  /// mechanism pipelines distributed rounds (dist_pipeline_depth > 1):
  /// that loop settles synchronously, because each settle validates the
  /// next round's speculative dispatch.
  bool async_settle = false;
  std::uint64_t seed = 7;
};

struct MarketResult {
  std::string mechanism_name;
  std::size_t rounds = 0;

  // Welfare at true costs.
  double cumulative_welfare = 0.0;
  double time_average_welfare = 0.0;
  std::vector<double> welfare_series;  ///< per-round true welfare

  // Payments and budget.
  double cumulative_payment = 0.0;
  double average_payment = 0.0;
  double cumulative_budget_violation = 0.0;
  double peak_budget_violation = 0.0;
  double violation_round_fraction = 0.0;
  std::vector<double> payment_series;
  std::vector<double> cumulative_payment_series;

  // Per-client economics.
  std::vector<double> client_utilities;
  std::vector<double> participation_counts;
  double ir_fraction = 1.0;

  // Final mechanism-side queue diagnostics (0 for stateless mechanisms).
  double final_budget_backlog = 0.0;
  double average_budget_backlog = 0.0;
};

/// Per-client bidding strategies; empty = everyone truthful.
using StrategyTable = std::vector<std::shared_ptr<const econ::BiddingStrategy>>;

/// Runs `mechanism` for spec.rounds rounds. The same seed produces the same
/// cost/value realizations regardless of mechanism, so results are paired
/// across mechanisms for fair comparison.
[[nodiscard]] MarketResult run_market(sfl::auction::Mechanism& mechanism,
                                      const MarketSpec& spec,
                                      const StrategyTable& strategies = {});

/// Convenience for E4-style deviation studies: utility accumulated by
/// `deviator` when it bids factor*cost while everyone else is truthful.
[[nodiscard]] double deviation_utility(sfl::auction::Mechanism& mechanism,
                                       const MarketSpec& spec, std::size_t deviator,
                                       double misreport_factor);

}  // namespace sfl::core
