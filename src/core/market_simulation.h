// Auction-only market simulation (no FL training).
//
// For economics-side experiments (budget tracking E3, truthfulness E4/E5,
// Lyapunov V tradeoff E6, regret E10) the learning loop is irrelevant and
// would dominate runtime. This simulation runs the mechanism against the
// stochastic cost process alone, tracking welfare, payments, queues, and
// per-client utilities over thousands of rounds.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "auction/mechanism.h"
#include "econ/bidding.h"
#include "econ/budget_tracker.h"
#include "econ/cost_model.h"
#include "econ/ledger.h"

namespace sfl::core {

/// Online/streaming arrival (scenario "online", E14): clients arrive and
/// depart mid-horizon and carry per-client win budgets, so the per-round
/// slate changes between rounds. Arrival, sojourn, and budget draws come
/// from a dedicated rng stream split AFTER the value/cost/bid streams, so
/// enabling the scenario never perturbs the stationary trajectories.
struct OnlineArrivalSpec {
  bool enabled = false;
  /// Client i's arrival round is uniform in [0, arrival_window * rounds).
  double arrival_window = 0.5;
  /// Sojourn length is uniform in [min, max] * rounds after arrival.
  double min_sojourn_fraction = 0.25;
  double max_sojourn_fraction = 1.0;
  /// Per-client win budget, uniform integer in [min, max]: a client that
  /// has won that many rounds stops bidding (hard participation cap on top
  /// of the mechanism's soft Z-queue pacing). max == 0 disables the cap.
  std::size_t min_win_budget = 0;
  std::size_t max_win_budget = 0;
};

struct MarketSpec {
  std::size_t num_clients = 100;
  std::size_t rounds = 1000;
  std::size_t max_winners = 10;
  double per_round_budget = 5.0;
  /// Client values: v_i = valuation_scale * mass_i with per-client mass
  /// drawn once from lognormal(0, value_sigma) (data-size surrogate).
  double valuation_scale = 2.0;
  double value_sigma = 0.35;
  econ::CostModelSpec cost{};
  /// Streamed settlement: route mechanism.settle() through a
  /// core::AsyncSettler on the shared pool, with a flush barrier before
  /// each run_round and before final queue reads — results are
  /// bit-identical to the synchronous path (the async determinism suite
  /// enforces this for every registry mechanism). Ignored when the
  /// mechanism pipelines distributed rounds (dist_pipeline_depth > 1):
  /// that loop settles synchronously, because each settle validates the
  /// next round's speculative dispatch.
  bool async_settle = false;
  /// Streaming arrival/departure with per-client win budgets. Incompatible
  /// with pipelined distributed rounds (presence depends on settled
  /// outcomes, so slates cannot be built speculatively ahead).
  OnlineArrivalSpec online{};
  std::uint64_t seed = 7;
};

struct MarketResult {
  std::string mechanism_name;
  std::size_t rounds = 0;

  // Welfare at true costs.
  double cumulative_welfare = 0.0;
  double time_average_welfare = 0.0;
  std::vector<double> welfare_series;  ///< per-round true welfare

  // Payments and budget.
  double cumulative_payment = 0.0;
  double average_payment = 0.0;
  double cumulative_budget_violation = 0.0;
  double peak_budget_violation = 0.0;
  double violation_round_fraction = 0.0;
  std::vector<double> payment_series;
  std::vector<double> cumulative_payment_series;

  // Per-client economics.
  std::vector<double> client_utilities;
  std::vector<double> participation_counts;
  double ir_fraction = 1.0;

  // Final mechanism-side queue diagnostics (0 for stateless mechanisms).
  double final_budget_backlog = 0.0;
  double average_budget_backlog = 0.0;

  // Online-arrival diagnostics (empty / 0 for stationary markets).
  std::vector<double> active_clients_series;  ///< bidders present per round
  std::size_t budget_exhausted_clients = 0;   ///< clients that spent their cap
};

/// Per-client bidding strategies; empty = everyone truthful.
using StrategyTable = std::vector<std::shared_ptr<const econ::BiddingStrategy>>;

/// Runs `mechanism` for spec.rounds rounds. The same seed produces the same
/// cost/value realizations regardless of mechanism, so results are paired
/// across mechanisms for fair comparison.
[[nodiscard]] MarketResult run_market(sfl::auction::Mechanism& mechanism,
                                      const MarketSpec& spec,
                                      const StrategyTable& strategies = {});

/// Convenience for E4-style deviation studies: utility accumulated by
/// `deviator` when it bids factor*cost while everyone else is truthful.
[[nodiscard]] double deviation_utility(sfl::auction::Mechanism& mechanism,
                                       const MarketSpec& spec, std::size_t deviator,
                                       double misreport_factor);

/// Multi-requester market (scenario "multi", E14): several federated-learning
/// requesters auction over ONE shared client population each round. Every
/// requester runs its own LTO mechanism (independent Q/Z queues and budget),
/// but a client can train for at most one requester per round, so the R
/// per-requester rounds are cleared together as an exclusive MarketBatch
/// (MarketBatch::set_exclusive) through one fused engine pass, and each
/// requester's winners/payments flow back through the mechanism's
/// external-round API (external_round_inputs / commit_external_round).
struct MultiRequesterSpec {
  std::size_t requesters = 3;
  std::size_t num_clients = 100;
  std::size_t rounds = 500;
  std::size_t max_winners = 5;    ///< per requester per round
  double per_round_budget = 5.0;  ///< per requester
  /// Requester r values client i at
  /// valuation_scale * (1 + r * requester_value_spread) * mass_i with one
  /// shared lognormal(0, value_sigma) mass per client — asymmetric
  /// competition for the same population.
  double valuation_scale = 2.0;
  double requester_value_spread = 0.25;
  double value_sigma = 0.35;
  econ::CostModelSpec cost{};
  /// Shard lanes for the fused exclusive clear (ShardedWdp semantics:
  /// 0 = auto, 1 = serial). Bit-identical results at every count.
  std::size_t shards = 1;
  std::uint64_t seed = 7;
};

struct MultiRequesterResult {
  std::size_t rounds = 0;
  std::size_t requesters = 0;
  // Per-requester cumulative aggregates (size == requesters).
  std::vector<double> requester_welfare;   ///< sum of (value - true cost)
  std::vector<double> requester_payment;   ///< realized payments
  std::vector<double> requester_backlog;   ///< final budget-queue backlog Q
  std::vector<std::size_t> requester_wins; ///< rounds won, summed over clients
  // Market-wide per-round trajectories (summed across requesters).
  std::vector<double> welfare_series;
  std::vector<double> payment_series;
  std::vector<double> queue_series;  ///< total Q backlog after each round
  /// Winner rows whose client had already won another requester's market in
  /// the same round — the cross-market exclusivity invariant. Always 0 for
  /// a correct engine; surfaced (rather than asserted) so the property
  /// harness and the E14 bench can check it end to end.
  std::size_t duplicate_wins = 0;
};

/// Runs the multi-requester market for spec.rounds rounds; `mechanism` is a
/// registry key whose underlying mechanism must be an LTO instance
/// supporting external rounds (critical-value payments, no pipelining).
/// Settlement is applied synchronously per requester, so results are
/// deterministic in the seed for every such key and every shard count.
[[nodiscard]] MultiRequesterResult run_multi_requester_market(
    const MultiRequesterSpec& spec, const std::string& mechanism = "lto-vcg");

}  // namespace sfl::core
