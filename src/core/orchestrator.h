// SustainableFlOrchestrator: the full system round loop.
//
// Each round:
//   1. the cost process advances; energy harvest arrives (if enabled);
//   2. available clients submit bids (strategy table; truthful by default);
//   3. the server forms candidate profiles with values
//        v_i = valuation_scale * (d_i / mean_d) * q-hat_i
//      (q-hat from the reputation tracker when value-aware, else 1);
//   4. the mechanism picks winners and payments; batteries drain;
//   5. winners run T local SGD steps; the server aggregates (FedAvg);
//   6. the reputation tracker observes, per winner, the effect of that
//      client's solo update on a server-held validation loss;
//   7. metrics are recorded; the model is evaluated every eval_every rounds.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "auction/mechanism.h"
#include "data/partition.h"
#include "econ/bidding.h"
#include "econ/cost_model.h"
#include "fl/federated_trainer.h"
#include "sim/energy.h"
#include "sim/scenario.h"
#include "util/csv.h"

namespace sfl::core {

struct OrchestratorConfig {
  std::size_t rounds = 200;
  std::size_t max_winners = 10;
  double per_round_budget = 5.0;
  double valuation_scale = 2.0;
  /// Use reputation-estimated quality in valuations (true) or value-blind
  /// q-hat = 1 (false) — the E11 comparison.
  bool use_reputation = true;
  double reputation_prior = 0.8;
  double reputation_alpha = 0.2;
  std::size_t eval_every = 10;
  bool enable_energy = false;
  sim::EnergySpec energy{};
  econ::CostModelSpec cost{};
  /// Failure injection: each auction winner independently fails to deliver
  /// its update with this probability. Dropped winners are not paid, do not
  /// train, and do not drain energy; the mechanism's queues see the realized
  /// (reduced) payments. In [0, 1].
  double dropout_probability = 0.0;
  /// Optional per-client multipliers applied to every drawn cost (empty =
  /// all 1). Lets scenarios correlate cost with quality — e.g. noisy-label
  /// clients that are also cheap, the adverse-selection case quality-blind
  /// mechanisms fall for.
  std::vector<double> cost_multipliers{};
  /// Streamed settlement: wrap the mechanism in the async settlement
  /// pipeline so settle() enqueues onto the shared pool and queue updates
  /// overlap local training. The round loop flushes before every
  /// settlement-derived read, so trajectories (records, queue backlogs,
  /// payments) are bit-identical to the synchronous path.
  bool async_settle = false;
  std::uint64_t seed = 1;
};

struct RoundRecord {
  std::size_t round = 0;
  std::size_t available = 0;      ///< clients with energy to bid
  std::size_t participants = 0;   ///< winners that delivered
  std::size_t dropped = 0;        ///< winners lost to failure injection
  double payment = 0.0;
  double cumulative_payment = 0.0;
  double budget_backlog = 0.0;    ///< mechanism Q(t) (0 for stateless rules)
  double welfare = 0.0;           ///< true welfare this round
  double cumulative_welfare = 0.0;
  double test_accuracy = 0.0;     ///< only meaningful when `evaluated`
  double test_loss = 0.0;
  bool evaluated = false;
};

struct RunResult {
  std::string mechanism_name;
  std::vector<RoundRecord> rounds;

  double final_accuracy = 0.0;
  double final_loss = 0.0;
  double cumulative_welfare = 0.0;
  double cumulative_payment = 0.0;
  double average_payment = 0.0;
  double budget_violation = 0.0;        ///< cumulative overshoot at the end
  double peak_budget_violation = 0.0;
  double ir_fraction = 1.0;
  std::vector<double> client_utilities;
  std::vector<double> participation_counts;
  std::vector<double> final_reputation;
  std::vector<double> final_battery;    ///< empty when energy disabled
  std::vector<std::size_t> starvation_counts;  ///< empty when energy disabled

  /// Writes one row per round to `csv` (header managed by the caller).
  void write_rounds_csv(sfl::util::CsvWriter& csv) const;

  /// Column names matching write_rounds_csv.
  [[nodiscard]] static std::vector<std::string> csv_header();
};

/// Per-client bidding strategies; empty = all truthful.
using StrategyTable = std::vector<std::shared_ptr<const econ::BiddingStrategy>>;

class SustainableFlOrchestrator {
 public:
  /// `scenario` must outlive the orchestrator. The mechanism is owned.
  SustainableFlOrchestrator(const sim::Scenario& scenario,
                            std::unique_ptr<fl::Model> model,
                            fl::LocalTrainingSpec training,
                            std::unique_ptr<sfl::auction::Mechanism> mechanism,
                            OrchestratorConfig config,
                            StrategyTable strategies = {});

  /// Runs the configured number of rounds and returns the full record.
  [[nodiscard]] RunResult run();

  [[nodiscard]] const sfl::auction::Mechanism& mechanism() const noexcept {
    return *mechanism_;
  }

 private:
  const sim::Scenario* scenario_;
  fl::FederatedTrainer trainer_;
  std::unique_ptr<sfl::auction::Mechanism> mechanism_;
  OrchestratorConfig config_;
  StrategyTable strategies_;
};

}  // namespace sfl::core
