#include "util/logging.h"

#include <iostream>
#include <stdexcept>
#include <string>

namespace sfl::util {

std::string_view to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "UNKNOWN";
}

LogLevel parse_log_level(std::string_view text) {
  if (text == "debug") return LogLevel::kDebug;
  if (text == "info") return LogLevel::kInfo;
  if (text == "warn") return LogLevel::kWarn;
  if (text == "error") return LogLevel::kError;
  if (text == "off") return LogLevel::kOff;
  throw std::invalid_argument("unknown log level: " + std::string(text));
}

Logger::Logger(LogLevel level, std::ostream* sink)
    : level_(level), sink_(sink != nullptr ? sink : &std::cerr) {}

void Logger::log(LogLevel level, std::string_view message) {
  if (!enabled(level)) return;
  const std::scoped_lock lock(mutex_);
  (*sink_) << "[" << to_string(level) << "] " << message << '\n';
}

Logger& global_logger() {
  static Logger logger{LogLevel::kWarn, &std::cerr};
  return logger;
}

}  // namespace sfl::util
