// Minimal leveled logger.
//
// The simulator is library-first: nothing logs by default. Executables opt in
// by raising the level. Thread-safe (a single mutex around the sink); not
// designed for high-frequency logging — metrics go through CsvWriter instead.
#pragma once

#include <mutex>
#include <ostream>
#include <sstream>
#include <string_view>

namespace sfl::util {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

[[nodiscard]] std::string_view to_string(LogLevel level) noexcept;

/// Parses "debug"/"info"/"warn"/"error"/"off" (case-sensitive); throws
/// std::invalid_argument otherwise.
[[nodiscard]] LogLevel parse_log_level(std::string_view text);

class Logger {
 public:
  /// A logger writing at-or-above `level` to `sink`. The sink must outlive
  /// the logger; callers keep ownership (std::cerr is the common choice).
  explicit Logger(LogLevel level = LogLevel::kWarn, std::ostream* sink = nullptr);

  void set_level(LogLevel level) noexcept { level_ = level; }
  [[nodiscard]] LogLevel level() const noexcept { return level_; }

  [[nodiscard]] bool enabled(LogLevel level) const noexcept {
    return static_cast<int>(level) >= static_cast<int>(level_);
  }

  void log(LogLevel level, std::string_view message);

  template <typename... Args>
  void debug(Args&&... args) { log_fmt(LogLevel::kDebug, std::forward<Args>(args)...); }
  template <typename... Args>
  void info(Args&&... args) { log_fmt(LogLevel::kInfo, std::forward<Args>(args)...); }
  template <typename... Args>
  void warn(Args&&... args) { log_fmt(LogLevel::kWarn, std::forward<Args>(args)...); }
  template <typename... Args>
  void error(Args&&... args) { log_fmt(LogLevel::kError, std::forward<Args>(args)...); }

 private:
  template <typename... Args>
  void log_fmt(LogLevel level, Args&&... args) {
    if (!enabled(level)) return;
    std::ostringstream oss;
    (oss << ... << args);
    log(level, oss.str());
  }

  LogLevel level_;
  std::ostream* sink_;
  std::mutex mutex_;
};

/// Process-wide logger used by executables; defaults to warn-on-stderr.
[[nodiscard]] Logger& global_logger();

}  // namespace sfl::util
