// Runtime-dispatched SIMD kernels for the auction scoring inner loop.
//
// The one hot expression of the whole engine is
//
//   phi_i = value_weight * v_i - bid_weight * b_i - penalty_i
//
// (auction::score in auction/types.h). This header provides vectorized
// evaluations of that expression over contiguous spans — AVX2 on x86-64,
// NEON on aarch64 — selected at runtime, with the scalar loop always
// compiled as the portable fallback and as the tail of every vector kernel.
//
// Bit-exactness contract: every kernel evaluates phi_i with the exact IEEE
// operation tree of auction::score — two multiplies, then two subtractions,
// no fused multiply-add, no reassociation. The vector kernels use explicit
// mul/sub intrinsics (never contracted), the scalar kernel is out-of-line
// in a translation unit built with -ffp-contract=off (pinned globally in
// CMakeLists.txt), and a null `penalties` skips the final subtraction —
// bit-identical because x - (+0.0) == x for every non-NaN x. The
// dispatch-forcing test (tests/util/simd_test.cpp) sweeps denormals, ties,
// signed zeros, and large magnitudes across every available kernel and
// compares the results bit for bit against auction::score; a kernel that
// diverges is a bug in the kernel, never a tolerance to loosen.
#pragma once

#include <cstddef>

namespace sfl::util::simd {

/// The scoring kernels a host may offer. kScalar is always available.
enum class ScoreKernel {
  kScalar,
  kAvx2,  ///< x86-64 with AVX2 (runtime-detected)
  kNeon,  ///< aarch64 baseline
};

/// Human-readable kernel name ("scalar", "avx2", "neon").
[[nodiscard]] const char* kernel_name(ScoreKernel kernel) noexcept;

/// True when `kernel` can run on this host.
[[nodiscard]] bool kernel_available(ScoreKernel kernel) noexcept;

/// The kernel score_span dispatches to: the widest available one, detected
/// once and cached. The SFL_SIMD environment variable ("scalar", "avx2",
/// "neon") overrides the choice at process start; an unavailable or unknown
/// value falls back to auto-detection.
[[nodiscard]] ScoreKernel active_kernel() noexcept;

/// out[i] = value_weight * values[i] - bid_weight * bids[i] - penalties[i]
/// for i in [0, n), on the active kernel. `penalties` may be null (all-zero
/// penalties; the subtraction is skipped — bit-identical, see above). Spans
/// may be unaligned; `out` must not alias the inputs.
void score_span(const double* values, const double* bids,
                const double* penalties, double* out, std::size_t n,
                double value_weight, double bid_weight);

/// score_span on one specific kernel — the dispatch-forcing entry the
/// bit-exactness test sweeps. Throws std::invalid_argument when `kernel`
/// is not available on this host.
void score_span_with(ScoreKernel kernel, const double* values,
                     const double* bids, const double* penalties, double* out,
                     std::size_t n, double value_weight, double bid_weight);

}  // namespace sfl::util::simd
