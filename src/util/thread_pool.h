// Fixed-size thread pool used to parallelize local client training.
//
// Deliberately minimal: submit void tasks, wait for quiescence. Determinism
// note: tasks must not share RNG streams; the simulator gives each client its
// own split stream, so execution order never changes results.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace sfl::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers (>=1; defaults to hardware concurrency).
  explicit ThreadPool(std::size_t threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains outstanding work, then joins all workers.
  ~ThreadPool();

  /// Enqueues a task. Tasks must not throw; exceptions escaping a task
  /// terminate the process (by design — a failed worker invalidates results).
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

  [[nodiscard]] std::size_t thread_count() const noexcept { return workers_.size(); }

  /// Runs `fn(i)` for i in [0, count), distributing across the pool, and
  /// waits for completion. Equivalent to a parallel for loop.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

}  // namespace sfl::util
