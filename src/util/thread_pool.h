// Fixed-size thread pool used to parallelize local client training, the
// sharded auction hot path, and the async settlement drain tasks
// (core::AsyncSettler submits at most one short-lived drain task at a
// time, so settlement never monopolizes a worker).
//
// Two execution modes:
//  - submit()/wait_idle(): queued void tasks (the original API; local client
//    training uses it). Each submit allocates a task node.
//  - parallel_for_chunks(): a blocking fork-join loop over index ranges with
//    stable chunking. The calling thread participates, workers race over an
//    atomic chunk cursor, and the call performs ZERO heap allocations — this
//    is the entry point the allocation-free auction round pipeline relies on.
//
// Determinism note: tasks must not share RNG streams; the simulator gives
// each client its own split stream, so execution order never changes results.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace sfl::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers (>=1; defaults to hardware concurrency).
  explicit ThreadPool(std::size_t threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains outstanding work, then joins all workers.
  ~ThreadPool();

  /// Enqueues a task. Tasks must not throw; exceptions escaping a task
  /// terminate the process (by design — a failed worker invalidates results).
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has finished.
  void wait_idle();

  [[nodiscard]] std::size_t thread_count() const noexcept { return workers_.size(); }

  /// Runs `fn(i)` for i in [0, count), distributing across the pool, and
  /// waits for completion. Equivalent to a parallel for loop. Allocates one
  /// task node per index; prefer parallel_for_chunks on hot paths.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

  /// Stable chunk layout shared by every caller: chunk `c` of `chunks` over
  /// `total` items covers [c*total/chunks, (c+1)*total/chunks). Contiguous,
  /// exhaustive, and a pure function of (total, chunks, c) — so a sharded
  /// computation's work assignment never depends on thread scheduling.
  /// This layout is a PROTOCOL constant, not a tuning knob: the distributed
  /// WDP coordinator (src/dist) validates every shard worker's reply
  /// against it, so changing the formula is a wire-compatibility break
  /// between coordinator and worker builds.
  [[nodiscard]] static std::pair<std::size_t, std::size_t> chunk_range(
      std::size_t total, std::size_t chunks, std::size_t chunk) noexcept;

  /// Blocking fork-join parallel loop: calls fn(chunk, begin, end) once for
  /// each chunk in [0, chunks) with the stable chunk_range layout, spreading
  /// chunks across the workers AND the calling thread, and returns when all
  /// chunks finished. Performs no heap allocations. `fn` must not throw and
  /// must not re-enter the pool. One bulk loop runs at a time (concurrent
  /// callers serialize).
  template <typename Fn>
  void parallel_for_chunks(std::size_t total, std::size_t chunks, Fn&& fn) {
    using Callable = std::remove_reference_t<Fn>;
    struct Context {
      Callable* fn;
      std::size_t total;
      std::size_t chunks;
    } context{&fn, total, chunks};
    run_bulk(
        chunks,
        [](void* raw, std::size_t chunk) {
          auto* ctx = static_cast<Context*>(raw);
          const auto [begin, end] = chunk_range(ctx->total, ctx->chunks, chunk);
          (*ctx->fn)(chunk, begin, end);
        },
        &context);
  }

 private:
  /// One fork-join job: workers and the caller race over `next`; `done` and
  /// `workers_inside` (mutex-guarded) let the caller wait until every chunk
  /// ran AND every worker left the job before the stack frame dies.
  struct BulkJob {
    void (*invoke)(void*, std::size_t) = nullptr;
    void* context = nullptr;
    std::size_t count = 0;
    std::atomic<std::size_t> next{0};
    std::size_t done = 0;            ///< guarded by mutex_
    std::size_t workers_inside = 0;  ///< guarded by mutex_
  };

  void run_bulk(std::size_t count, void (*invoke)(void*, std::size_t),
                void* context);
  void participate(BulkJob& job);
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::condition_variable bulk_done_;
  std::mutex bulk_caller_mutex_;  ///< serializes concurrent run_bulk callers
  BulkJob* bulk_ = nullptr;       ///< guarded by mutex_
  std::uint64_t bulk_generation_ = 0;  ///< guarded by mutex_
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
};

/// Process-wide pool shared by the sharded WDP and other data-parallel hot
/// paths; constructed on first use with hardware concurrency. Mechanisms
/// that shard work default to this pool so a process never oversubscribes
/// cores with one pool per mechanism instance.
[[nodiscard]] ThreadPool& shared_pool();

}  // namespace sfl::util
