#include "util/require.h"

#include <stdexcept>
#include <string>

namespace sfl::util {

namespace {

[[nodiscard]] std::string format_message(std::string_view message,
                                         const std::source_location& loc) {
  std::string out;
  out.reserve(message.size() + 64);
  out.append(message);
  out.append(" [at ");
  out.append(loc.file_name());
  out.append(":");
  out.append(std::to_string(loc.line()));
  out.append("]");
  return out;
}

}  // namespace

void require(bool condition, std::string_view message, std::source_location loc) {
  if (!condition) {
    throw std::invalid_argument(format_message(message, loc));
  }
}

void check_invariant(bool condition, std::string_view message, std::source_location loc) {
  if (!condition) {
    throw std::logic_error(format_message(message, loc));
  }
}

std::size_t checked_index(std::size_t index, std::size_t size, std::string_view what,
                          std::source_location loc) {
  if (index >= size) {
    std::string msg = "index out of range for ";
    msg.append(what);
    msg.append(": ");
    msg.append(std::to_string(index));
    msg.append(" >= ");
    msg.append(std::to_string(size));
    throw std::out_of_range(format_message(msg, loc));
  }
  return index;
}

}  // namespace sfl::util
