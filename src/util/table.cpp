#include "util/table.h"

#include <algorithm>

#include "util/require.h"
#include "util/string_utils.h"

namespace sfl::util {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {
  require(!header_.empty(), "table header must have at least one column");
}

void TablePrinter::add_row(std::vector<std::string> row) {
  require(row.size() == header_.size(), "table row width must match header");
  rows_.push_back(std::move(row));
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " | ") << pad_right(row[c], widths[c]);
    }
    os << " |\n";
  };
  print_row(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
  }
  os << "-|\n";
  for (const auto& row : rows_) print_row(row);
}

std::string TablePrinter::cell_to_string(double v) { return format_double(v, 4); }
std::string TablePrinter::cell_to_string(std::size_t v) { return std::to_string(v); }
std::string TablePrinter::cell_to_string(std::int64_t v) { return std::to_string(v); }
std::string TablePrinter::cell_to_string(int v) { return std::to_string(v); }

}  // namespace sfl::util
