#include "util/config.h"

#include <cstdlib>
#include <stdexcept>

#include "util/require.h"
#include "util/string_utils.h"

namespace sfl::util {

Config Config::from_args(int argc, const char* const* argv) {
  Config config;
  for (int i = 1; i < argc; ++i) {
    const std::string_view token = argv[i];
    const auto eq = token.find('=');
    require(eq != std::string_view::npos && eq > 0,
            "configuration arguments must look like key=value");
    config.set(std::string(token.substr(0, eq)), std::string(token.substr(eq + 1)));
  }
  return config;
}

Config Config::from_text(std::string_view text) {
  Config config;
  for (const auto& raw_line : split(text, '\n')) {
    std::string line = std::string(trim(raw_line));
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line = std::string(trim(std::string_view(line).substr(0, hash)));
    }
    if (line.empty()) continue;
    const auto eq = line.find('=');
    require(eq != std::string::npos && eq > 0,
            "configuration lines must look like key=value");
    config.set(std::string(trim(std::string_view(line).substr(0, eq))),
               std::string(trim(std::string_view(line).substr(eq + 1))));
  }
  return config;
}

void Config::set(std::string key, std::string value) {
  require(!key.empty(), "configuration keys must be non-empty");
  values_[std::move(key)] = std::move(value);
}

bool Config::contains(const std::string& key) const {
  return values_.contains(key);
}

std::optional<std::string> Config::raw(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string Config::get_string(const std::string& key, std::string fallback) const {
  const auto value = raw(key);
  return value.has_value() ? *value : std::move(fallback);
}

double Config::get_double(const std::string& key, double fallback) const {
  const auto value = raw(key);
  if (!value.has_value()) return fallback;
  try {
    std::size_t consumed = 0;
    const double parsed = std::stod(*value, &consumed);
    require(consumed == value->size(), "trailing characters in numeric value");
    return parsed;
  } catch (const std::exception&) {
    throw std::invalid_argument("config key '" + key + "' is not a double: " + *value);
  }
}

std::int64_t Config::get_int(const std::string& key, std::int64_t fallback) const {
  const auto value = raw(key);
  if (!value.has_value()) return fallback;
  try {
    std::size_t consumed = 0;
    const long long parsed = std::stoll(*value, &consumed);
    require(consumed == value->size(), "trailing characters in integer value");
    return parsed;
  } catch (const std::exception&) {
    throw std::invalid_argument("config key '" + key + "' is not an integer: " + *value);
  }
}

std::size_t Config::get_size(const std::string& key, std::size_t fallback) const {
  const std::int64_t parsed = get_int(key, static_cast<std::int64_t>(fallback));
  require(parsed >= 0, "config key '" + key + "' must be non-negative");
  return static_cast<std::size_t>(parsed);
}

bool Config::get_bool(const std::string& key, bool fallback) const {
  const auto value = raw(key);
  if (!value.has_value()) return fallback;
  if (*value == "1" || *value == "true" || *value == "yes" || *value == "on") return true;
  if (*value == "0" || *value == "false" || *value == "no" || *value == "off") return false;
  throw std::invalid_argument("config key '" + key + "' is not a boolean: " + *value);
}

std::vector<std::string> Config::keys() const {
  std::vector<std::string> out;
  out.reserve(values_.size());
  for (const auto& [key, value] : values_) out.push_back(key);
  return out;
}

namespace {

[[nodiscard]] bool env_truthy(const char* name) {
  const char* raw = std::getenv(name);
  if (raw == nullptr) return false;
  const std::string_view value = raw;
  return value == "1" || value == "true" || value == "yes" || value == "on";
}

}  // namespace

bool fast_mode_enabled() { return env_truthy("REPRO_FAST"); }

bool validate_mode_enabled() {
#ifndef NDEBUG
  return true;
#else
  static const bool enabled = env_truthy("SFL_VALIDATE");
  return enabled;
#endif
}

}  // namespace sfl::util
