#include "util/simd.h"

#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#if defined(__x86_64__) || defined(_M_X64)
#define SFL_SIMD_X86 1
#include <immintrin.h>
#elif defined(__aarch64__)
#define SFL_SIMD_AARCH64 1
#include <arm_neon.h>
#endif

namespace sfl::util::simd {

namespace {

/// The portable kernel AND the tail of every vector kernel. Out-of-line
/// (never inlined into a target("avx2") caller) so the remainder elements
/// are evaluated by exactly the code the pure-scalar path runs: the same
/// non-contracted mul/mul/sub/sub tree as auction::score.
[[gnu::noinline]] void score_scalar(const double* values, const double* bids,
                                    const double* penalties, double* out,
                                    std::size_t n, double vw, double bw) {
  if (penalties == nullptr) {
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = vw * values[i] - bw * bids[i];
    }
  } else {
    for (std::size_t i = 0; i < n; ++i) {
      out[i] = vw * values[i] - bw * bids[i] - penalties[i];
    }
  }
}

#if defined(SFL_SIMD_X86)
/// 4-wide AVX2 lanes with explicit (never-contracted) mul/sub intrinsics;
/// the <4 remainder runs through the out-of-line scalar kernel.
__attribute__((target("avx2"))) void score_avx2(const double* values,
                                                const double* bids,
                                                const double* penalties,
                                                double* out, std::size_t n,
                                                double vw, double bw) {
  const __m256d wv = _mm256_set1_pd(vw);
  const __m256d wb = _mm256_set1_pd(bw);
  std::size_t i = 0;
  if (penalties == nullptr) {
    for (; i + 4 <= n; i += 4) {
      const __m256d v = _mm256_loadu_pd(values + i);
      const __m256d b = _mm256_loadu_pd(bids + i);
      _mm256_storeu_pd(
          out + i, _mm256_sub_pd(_mm256_mul_pd(wv, v), _mm256_mul_pd(wb, b)));
    }
  } else {
    for (; i + 4 <= n; i += 4) {
      const __m256d v = _mm256_loadu_pd(values + i);
      const __m256d b = _mm256_loadu_pd(bids + i);
      const __m256d p = _mm256_loadu_pd(penalties + i);
      _mm256_storeu_pd(
          out + i,
          _mm256_sub_pd(
              _mm256_sub_pd(_mm256_mul_pd(wv, v), _mm256_mul_pd(wb, b)), p));
    }
  }
  score_scalar(values + i, bids + i,
               penalties == nullptr ? nullptr : penalties + i, out + i, n - i,
               vw, bw);
}
#endif

#if defined(SFL_SIMD_AARCH64)
/// 2-wide NEON lanes (baseline on aarch64) with explicit vmulq/vsubq — no
/// vfma, matching the non-contracted scalar tree.
void score_neon(const double* values, const double* bids,
                const double* penalties, double* out, std::size_t n, double vw,
                double bw) {
  const float64x2_t wv = vdupq_n_f64(vw);
  const float64x2_t wb = vdupq_n_f64(bw);
  std::size_t i = 0;
  if (penalties == nullptr) {
    for (; i + 2 <= n; i += 2) {
      const float64x2_t v = vld1q_f64(values + i);
      const float64x2_t b = vld1q_f64(bids + i);
      vst1q_f64(out + i, vsubq_f64(vmulq_f64(wv, v), vmulq_f64(wb, b)));
    }
  } else {
    for (; i + 2 <= n; i += 2) {
      const float64x2_t v = vld1q_f64(values + i);
      const float64x2_t b = vld1q_f64(bids + i);
      const float64x2_t p = vld1q_f64(penalties + i);
      vst1q_f64(out + i,
                vsubq_f64(vsubq_f64(vmulq_f64(wv, v), vmulq_f64(wb, b)), p));
    }
  }
  score_scalar(values + i, bids + i,
               penalties == nullptr ? nullptr : penalties + i, out + i, n - i,
               vw, bw);
}
#endif

ScoreKernel detect_kernel() noexcept {
  // SFL_SIMD pins a kernel for A/B runs and the dispatch-forcing tests; an
  // unavailable or unknown value falls through to auto-detection rather
  // than failing a whole run over a typo.
  if (const char* env = std::getenv("SFL_SIMD"); env != nullptr) {
    if (std::strcmp(env, "scalar") == 0) return ScoreKernel::kScalar;
    if (std::strcmp(env, "avx2") == 0 && kernel_available(ScoreKernel::kAvx2)) {
      return ScoreKernel::kAvx2;
    }
    if (std::strcmp(env, "neon") == 0 && kernel_available(ScoreKernel::kNeon)) {
      return ScoreKernel::kNeon;
    }
  }
  if (kernel_available(ScoreKernel::kAvx2)) return ScoreKernel::kAvx2;
  if (kernel_available(ScoreKernel::kNeon)) return ScoreKernel::kNeon;
  return ScoreKernel::kScalar;
}

}  // namespace

const char* kernel_name(ScoreKernel kernel) noexcept {
  switch (kernel) {
    case ScoreKernel::kScalar:
      return "scalar";
    case ScoreKernel::kAvx2:
      return "avx2";
    case ScoreKernel::kNeon:
      return "neon";
  }
  return "unknown";
}

bool kernel_available(ScoreKernel kernel) noexcept {
  switch (kernel) {
    case ScoreKernel::kScalar:
      return true;
    case ScoreKernel::kAvx2:
#if defined(SFL_SIMD_X86)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case ScoreKernel::kNeon:
#if defined(SFL_SIMD_AARCH64)
      return true;
#else
      return false;
#endif
  }
  return false;
}

ScoreKernel active_kernel() noexcept {
  static const ScoreKernel kernel = detect_kernel();
  return kernel;
}

void score_span(const double* values, const double* bids,
                const double* penalties, double* out, std::size_t n,
                double value_weight, double bid_weight) {
  score_span_with(active_kernel(), values, bids, penalties, out, n,
                  value_weight, bid_weight);
}

void score_span_with(ScoreKernel kernel, const double* values,
                     const double* bids, const double* penalties, double* out,
                     std::size_t n, double value_weight, double bid_weight) {
  if (!kernel_available(kernel)) {
    throw std::invalid_argument(std::string("simd: kernel unavailable here: ") +
                                kernel_name(kernel));
  }
  switch (kernel) {
    case ScoreKernel::kScalar:
      score_scalar(values, bids, penalties, out, n, value_weight, bid_weight);
      return;
    case ScoreKernel::kAvx2:
#if defined(SFL_SIMD_X86)
      score_avx2(values, bids, penalties, out, n, value_weight, bid_weight);
      return;
#else
      break;
#endif
    case ScoreKernel::kNeon:
#if defined(SFL_SIMD_AARCH64)
      score_neon(values, bids, penalties, out, n, value_weight, bid_weight);
      return;
#else
      break;
#endif
  }
  // kernel_available said yes but no implementation was compiled — cannot
  // happen; keep the scalar answer rather than UB.
  score_scalar(values, bids, penalties, out, n, value_weight, bid_weight);
}

}  // namespace sfl::util::simd
