// Lightweight key=value configuration.
//
// Bench and example binaries accept `key=value` command-line overrides and a
// REPRO_FAST-style environment knob; this class parses and type-checks them.
// Keys are flat strings ("rounds", "auction.v_weight"); values are parsed on
// demand with full validation and defaulting.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace sfl::util {

class Config {
 public:
  Config() = default;

  /// Parses argv-style tokens of the form `key=value`. Tokens without '='
  /// throw std::invalid_argument. Later duplicates override earlier ones.
  static Config from_args(int argc, const char* const* argv);

  /// Parses a newline-separated `key=value` text block. '#' starts a comment.
  static Config from_text(std::string_view text);

  void set(std::string key, std::string value);

  [[nodiscard]] bool contains(const std::string& key) const;
  [[nodiscard]] std::optional<std::string> raw(const std::string& key) const;

  [[nodiscard]] std::string get_string(const std::string& key,
                                       std::string fallback) const;
  [[nodiscard]] double get_double(const std::string& key, double fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key,
                                     std::int64_t fallback) const;
  [[nodiscard]] std::size_t get_size(const std::string& key,
                                     std::size_t fallback) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool fallback) const;

  /// All keys in sorted order (for echoing a run's configuration).
  [[nodiscard]] std::vector<std::string> keys() const;

 private:
  std::map<std::string, std::string> values_;
};

/// True when the REPRO_FAST environment variable is set to a truthy value
/// ("1", "true", "yes", "on"); benches shrink their workloads accordingly.
[[nodiscard]] bool fast_mode_enabled();

/// True when the SFL_VALIDATE environment variable is set to a truthy value
/// (same spellings as REPRO_FAST), or always in debug (!NDEBUG) builds. The
/// auction hot path validates candidate data once at slate construction;
/// this flag re-enables the full per-candidate scans inside every solver
/// call for debugging. Cached after the first call.
[[nodiscard]] bool validate_mode_enabled();

}  // namespace sfl::util
