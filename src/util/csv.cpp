#include "util/csv.h"

#include "util/require.h"

namespace sfl::util {

CsvWriter::CsvWriter(std::ostream& sink, std::vector<std::string> header)
    : sink_(sink), columns_(header.size()) {
  require(columns_ > 0, "CSV header must have at least one column");
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (i > 0) sink_ << ',';
    sink_ << escape(header[i]);
  }
  sink_ << '\n';
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  require(fields.size() == columns_,
          "CSV row width does not match header width");
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) sink_ << ',';
    sink_ << escape(fields[i]);
  }
  sink_ << '\n';
  ++rows_;
}

std::string CsvWriter::escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return field;
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (const char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

}  // namespace sfl::util
