// ASCII table rendering for bench outputs.
//
// Every experiment binary prints the rows/series the paper's tables and
// figures report; TablePrinter keeps that output aligned and diff-friendly.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace sfl::util {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Adds a row; width must match the header (checked).
  void add_row(std::vector<std::string> row);

  /// Convenience for mixed scalar/string rows; doubles are formatted with
  /// four fraction digits.
  template <typename... Cells>
  void row(const Cells&... cells) {
    std::vector<std::string> out;
    out.reserve(sizeof...(cells));
    (out.push_back(cell_to_string(cells)), ...);
    add_row(std::move(out));
  }

  /// Renders the whole table with a separator under the header.
  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  [[nodiscard]] static std::string cell_to_string(const std::string& v) { return v; }
  [[nodiscard]] static std::string cell_to_string(const char* v) { return v; }
  [[nodiscard]] static std::string cell_to_string(double v);
  [[nodiscard]] static std::string cell_to_string(std::size_t v);
  [[nodiscard]] static std::string cell_to_string(std::int64_t v);
  [[nodiscard]] static std::string cell_to_string(int v);

  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace sfl::util
