// CSV emission for experiment metrics.
//
// CsvWriter produces RFC-4180-ish CSV (quotes fields containing commas,
// quotes, or newlines) with a fixed header declared up front; row width is
// validated so a refactor cannot silently misalign columns.
#pragma once

#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace sfl::util {

class CsvWriter {
 public:
  /// Writes `header` immediately to `sink`. Sink must outlive the writer;
  /// the caller keeps ownership (file stream or std::cout).
  CsvWriter(std::ostream& sink, std::vector<std::string> header);

  /// Number of columns fixed by the header.
  [[nodiscard]] std::size_t columns() const noexcept { return columns_; }

  /// Number of data rows written so far.
  [[nodiscard]] std::size_t rows_written() const noexcept { return rows_; }

  /// Writes one row; `fields.size()` must equal `columns()`.
  void write_row(const std::vector<std::string>& fields);

  /// Convenience: stringifies heterogenous fields (arithmetic via
  /// to_string-like formatting with full double precision, strings verbatim).
  template <typename... Fields>
  void row(const Fields&... fields) {
    std::vector<std::string> cells;
    cells.reserve(sizeof...(fields));
    (cells.push_back(stringify(fields)), ...);
    write_row(cells);
  }

  /// Escapes a single CSV field per RFC 4180.
  [[nodiscard]] static std::string escape(const std::string& field);

 private:
  template <typename T>
  [[nodiscard]] static std::string stringify(const T& value) {
    if constexpr (std::is_convertible_v<T, std::string>) {
      return std::string(value);
    } else {
      std::ostringstream oss;
      oss.precision(12);
      oss << value;
      return oss.str();
    }
  }

  std::ostream& sink_;
  std::size_t columns_;
  std::size_t rows_ = 0;
};

}  // namespace sfl::util
