// Small string helpers used across the library (no locale dependence).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace sfl::util {

/// Splits on a single delimiter; keeps empty fields ("a,,b" -> 3 fields).
[[nodiscard]] std::vector<std::string> split(std::string_view text, char delimiter);

/// Strips ASCII whitespace from both ends.
[[nodiscard]] std::string_view trim(std::string_view text) noexcept;

/// True if `text` starts with `prefix`.
[[nodiscard]] bool starts_with(std::string_view text, std::string_view prefix) noexcept;

/// Joins items with a separator.
[[nodiscard]] std::string join(const std::vector<std::string>& items,
                               std::string_view separator);

/// Formats a double with `digits` significant fraction digits, fixed point.
[[nodiscard]] std::string format_double(double value, int digits = 4);

/// Left-pads (or truncates nothing) to at least `width` with spaces.
[[nodiscard]] std::string pad_left(std::string text, std::size_t width);

/// Right-pads to at least `width` with spaces.
[[nodiscard]] std::string pad_right(std::string text, std::size_t width);

}  // namespace sfl::util
