#include "util/thread_pool.h"

#include "util/require.h"

namespace sfl::util {

ThreadPool::ThreadPool(std::size_t threads) {
  std::size_t n = threads;
  if (n == 0) {
    n = std::thread::hardware_concurrency();
    if (n == 0) n = 1;
  }
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  task_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  require(static_cast<bool>(task), "cannot submit an empty task");
  {
    const std::scoped_lock lock(mutex_);
    require(!stopping_, "cannot submit to a stopping thread pool");
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  require(static_cast<bool>(fn), "parallel_for requires a callable");
  for (std::size_t i = 0; i < count; ++i) {
    submit([&fn, i] { fn(i); });
  }
  wait_idle();
}

std::pair<std::size_t, std::size_t> ThreadPool::chunk_range(
    std::size_t total, std::size_t chunks, std::size_t chunk) noexcept {
  // total * chunk stays in 64 bits for any realistic (total, chunks): the
  // sharded WDP caps chunks at the core count, and total is a client count.
  const std::size_t begin = total * chunk / chunks;
  const std::size_t end = total * (chunk + 1) / chunks;
  return {begin, end};
}

void ThreadPool::run_bulk(std::size_t count,
                          void (*invoke)(void*, std::size_t), void* context) {
  require(invoke != nullptr, "parallel_for_chunks requires a callable");
  if (count == 0) return;
  // One bulk job at a time; a second caller blocks here, not on the workers.
  const std::scoped_lock caller_lock(bulk_caller_mutex_);

  BulkJob job;
  job.invoke = invoke;
  job.context = context;
  job.count = count;
  {
    const std::scoped_lock lock(mutex_);
    require(!stopping_, "cannot run a bulk loop on a stopping thread pool");
    bulk_ = &job;
    ++bulk_generation_;
  }
  task_available_.notify_all();

  // The caller is a full participant: even a 1-thread pool makes progress
  // without bouncing the job through a worker.
  participate(job);

  // The job lives on this stack frame: wait until every chunk ran AND every
  // worker stepped out of participate() before letting it die.
  {
    std::unique_lock lock(mutex_);
    bulk_done_.wait(lock, [&job] {
      return job.done == job.count && job.workers_inside == 0;
    });
    bulk_ = nullptr;
  }
}

void ThreadPool::participate(BulkJob& job) {
  while (true) {
    const std::size_t chunk = job.next.fetch_add(1, std::memory_order_relaxed);
    if (chunk >= job.count) return;
    job.invoke(job.context, chunk);
    {
      const std::scoped_lock lock(mutex_);
      ++job.done;
      if (job.done == job.count) bulk_done_.notify_all();
    }
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen_bulk_generation = 0;
  while (true) {
    std::function<void()> task;
    BulkJob* bulk = nullptr;
    {
      std::unique_lock lock(mutex_);
      task_available_.wait(lock, [&] {
        return stopping_ || !tasks_.empty() ||
               (bulk_ != nullptr && bulk_generation_ != seen_bulk_generation);
      });
      if (bulk_ != nullptr && bulk_generation_ != seen_bulk_generation) {
        // Join the bulk job exactly once per generation; workers_inside is
        // incremented under the same lock that published bulk_, so run_bulk
        // cannot retire the job while we hold a pointer to it.
        seen_bulk_generation = bulk_generation_;
        bulk = bulk_;
        ++bulk->workers_inside;
      } else if (!tasks_.empty()) {
        task = std::move(tasks_.front());
        tasks_.pop();
      } else if (stopping_) {
        return;
      } else {
        continue;
      }
    }
    if (bulk != nullptr) {
      participate(*bulk);
      const std::scoped_lock lock(mutex_);
      --bulk->workers_inside;
      if (bulk->workers_inside == 0) bulk_done_.notify_all();
      continue;
    }
    task();
    {
      const std::scoped_lock lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

ThreadPool& shared_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace sfl::util
