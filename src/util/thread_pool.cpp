#include "util/thread_pool.h"

#include "util/require.h"

namespace sfl::util {

ThreadPool::ThreadPool(std::size_t threads) {
  std::size_t n = threads;
  if (n == 0) {
    n = std::thread::hardware_concurrency();
    if (n == 0) n = 1;
  }
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::scoped_lock lock(mutex_);
    stopping_ = true;
  }
  task_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  require(static_cast<bool>(task), "cannot submit an empty task");
  {
    const std::scoped_lock lock(mutex_);
    require(!stopping_, "cannot submit to a stopping thread pool");
    tasks_.push(std::move(task));
    ++in_flight_;
  }
  task_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  require(static_cast<bool>(fn), "parallel_for requires a callable");
  for (std::size_t i = 0; i < count; ++i) {
    submit([&fn, i] { fn(i); });
  }
  wait_idle();
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      task_available_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) {
        if (stopping_) return;
        continue;
      }
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      const std::scoped_lock lock(mutex_);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace sfl::util
