#include "util/rng.h"

#include <cmath>
#include <numbers>
#include <numeric>

namespace sfl::util {

namespace {

[[nodiscard]] constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : state_) {
    word = splitmix64(sm);
  }
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

Rng Rng::split() noexcept {
  // A fresh generator seeded from this stream; splitmix64 re-mixing in the
  // constructor decorrelates the child from the parent.
  return Rng{(*this)()};
}

double Rng::uniform() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  require(lo <= hi, "uniform(lo, hi) requires lo <= hi");
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  require(n > 0, "uniform_index requires n > 0");
  // Lemire's nearly-divisionless method with rejection for exact uniformity.
  std::uint64_t x = (*this)();
  unsigned __int128 m = static_cast<unsigned __int128>(x) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<unsigned __int128>(x) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  require(lo <= hi, "uniform_int requires lo <= hi");
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(uniform_index(span));
}

double Rng::normal() noexcept {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * std::numbers::pi * u2;
  cached_normal_ = radius * std::sin(angle);
  has_cached_normal_ = true;
  return radius * std::cos(angle);
}

double Rng::normal(double mean, double stddev) {
  require(stddev >= 0.0, "normal stddev must be >= 0");
  return mean + stddev * normal();
}

double Rng::lognormal(double mu, double sigma) {
  require(sigma >= 0.0, "lognormal sigma must be >= 0");
  return std::exp(normal(mu, sigma));
}

double Rng::exponential(double lambda) {
  require(lambda > 0.0, "exponential rate must be > 0");
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / lambda;
}

bool Rng::bernoulli(double p) {
  require(p >= 0.0 && p <= 1.0, "bernoulli p must be in [0, 1]");
  return uniform() < p;
}

double Rng::gamma(double shape, double scale) {
  require(shape > 0.0, "gamma shape must be > 0");
  require(scale > 0.0, "gamma scale must be > 0");
  if (shape < 1.0) {
    // Boost to shape+1 then correct (Marsaglia-Tsang trick).
    const double u = std::max(uniform(), 1e-300);
    return gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  while (true) {
    double x = 0.0;
    double v = 0.0;
    do {
      x = normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) {
      return d * v * scale;
    }
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v * scale;
    }
  }
}

std::vector<double> Rng::dirichlet(std::size_t dim, double alpha) {
  require(dim > 0, "dirichlet dimension must be > 0");
  return dirichlet(std::vector<double>(dim, alpha));
}

std::vector<double> Rng::dirichlet(const std::vector<double>& alphas) {
  require(!alphas.empty(), "dirichlet needs at least one concentration");
  std::vector<double> out(alphas.size());
  double total = 0.0;
  for (std::size_t i = 0; i < alphas.size(); ++i) {
    require(alphas[i] > 0.0, "dirichlet concentrations must be > 0");
    out[i] = gamma(alphas[i], 1.0);
    total += out[i];
  }
  if (total <= 0.0) {
    // Numerically degenerate draw; fall back to uniform simplex point.
    const double uniform_mass = 1.0 / static_cast<double>(out.size());
    for (auto& v : out) v = uniform_mass;
    return out;
  }
  for (auto& v : out) v /= total;
  return out;
}

std::size_t Rng::categorical(const std::vector<double>& weights) {
  require(!weights.empty(), "categorical needs at least one weight");
  double total = 0.0;
  for (const double w : weights) {
    require(w >= 0.0, "categorical weights must be >= 0");
    total += w;
  }
  require(total > 0.0, "categorical weights must not all be zero");
  const double target = uniform() * total;
  double cumulative = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    cumulative += weights[i];
    if (target < cumulative) return i;
  }
  return weights.size() - 1;  // guard against floating-point edge
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n, std::size_t k) {
  require(k <= n, "cannot sample more items than the population size");
  std::vector<std::size_t> pool(n);
  std::iota(pool.begin(), pool.end(), std::size_t{0});
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + uniform_index(n - i);
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

}  // namespace sfl::util
