// Deterministic random number generation for simulations.
//
// Every stochastic component of this library takes an explicit `Rng&` so that
// experiments are exactly reproducible from a single seed. The generator is
// xoshiro256++ (Blackman & Vigna), seeded via splitmix64; it is fast, has a
// 2^256-1 period, and — unlike std::mt19937 + std::uniform_*_distribution —
// produces identical streams across standard-library implementations.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "util/require.h"

namespace sfl::util {

/// splitmix64 step; used for seeding and as a cheap stateless mixer.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256++ PRNG with explicit-seed construction and stream splitting.
///
/// Satisfies UniformRandomBitGenerator, so it can also feed <random>
/// distributions where cross-platform determinism is not required.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit words of state from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  /// Next raw 64-bit value.
  result_type operator()() noexcept;

  /// Derives an independent child generator; used to give each simulated
  /// client its own stream so adding clients never perturbs existing ones.
  [[nodiscard]] Rng split() noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept;

  /// Uniform double in [lo, hi). Requires lo <= hi.
  [[nodiscard]] double uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0. Uses Lemire rejection-free
  /// multiply-shift with bias correction for exactness.
  [[nodiscard]] std::uint64_t uniform_index(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller (cached second value).
  [[nodiscard]] double normal() noexcept;

  /// Normal with the given mean / standard deviation (stddev >= 0).
  [[nodiscard]] double normal(double mean, double stddev);

  /// Log-normal: exp(N(mu, sigma)). Heavy-tailed costs/datasizes.
  [[nodiscard]] double lognormal(double mu, double sigma);

  /// Exponential with rate lambda > 0.
  [[nodiscard]] double exponential(double lambda);

  /// Bernoulli with success probability p in [0, 1].
  [[nodiscard]] bool bernoulli(double p);

  /// Gamma(shape, scale), shape > 0, scale > 0 (Marsaglia-Tsang).
  [[nodiscard]] double gamma(double shape, double scale);

  /// Symmetric Dirichlet of dimension `dim` with concentration alpha > 0.
  [[nodiscard]] std::vector<double> dirichlet(std::size_t dim, double alpha);

  /// Dirichlet with per-component concentrations (all > 0, non-empty).
  [[nodiscard]] std::vector<double> dirichlet(const std::vector<double>& alphas);

  /// Samples an index in [0, weights.size()) proportionally to `weights`
  /// (all >= 0, sum > 0).
  [[nodiscard]] std::size_t categorical(const std::vector<double>& weights);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    if (items.size() < 2) return;
    for (std::size_t i = items.size() - 1; i > 0; --i) {
      const std::size_t j = uniform_index(i + 1);
      using std::swap;
      swap(items[i], items[j]);
    }
  }

  /// Samples `k` distinct indices from [0, n) uniformly (k <= n), in
  /// selection order (partial Fisher-Yates).
  [[nodiscard]] std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                                    std::size_t k);

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace sfl::util
