// Contract-checking helpers (C++ Core Guidelines I.6/I.8 style).
//
// All public entry points in this library validate their preconditions with
// `require(...)` and throw standard exception types on violation. These checks
// stay on in release builds: the library is a research artifact where silent
// precondition violations would corrupt experiment results.
#pragma once

#include <source_location>
#include <string_view>

namespace sfl::util {

/// Throws std::invalid_argument with a message that includes the call site
/// when `condition` is false. Use for argument validation.
void require(bool condition, std::string_view message,
             std::source_location loc = std::source_location::current());

/// Throws std::logic_error when `condition` is false. Use for internal
/// invariants that should be unreachable when the library is correct.
void check_invariant(bool condition, std::string_view message,
                     std::source_location loc = std::source_location::current());

/// Throws std::out_of_range when `index >= size`. Returns `index` so it can
/// be used inline: `v[checked_index(i, v.size(), "client id")]`.
std::size_t checked_index(std::size_t index, std::size_t size, std::string_view what,
                          std::source_location loc = std::source_location::current());

}  // namespace sfl::util
