// Wall-clock timing for the scalability experiments.
#pragma once

#include <chrono>

namespace sfl::util {

/// Monotonic stopwatch; started on construction, restartable.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void restart() { start_ = Clock::now(); }

  [[nodiscard]] double elapsed_seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  [[nodiscard]] double elapsed_millis() const { return elapsed_seconds() * 1e3; }
  [[nodiscard]] double elapsed_micros() const { return elapsed_seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace sfl::util
