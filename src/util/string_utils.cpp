#include "util/string_utils.h"

#include <cctype>
#include <sstream>

namespace sfl::util {

std::vector<std::string> split(std::string_view text, char delimiter) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const auto pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view text) noexcept {
  const auto is_space = [](unsigned char c) { return std::isspace(c) != 0; };
  while (!text.empty() && is_space(static_cast<unsigned char>(text.front()))) {
    text.remove_prefix(1);
  }
  while (!text.empty() && is_space(static_cast<unsigned char>(text.back()))) {
    text.remove_suffix(1);
  }
  return text;
}

bool starts_with(std::string_view text, std::string_view prefix) noexcept {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

std::string join(const std::vector<std::string>& items, std::string_view separator) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out.append(separator);
    out.append(items[i]);
  }
  return out;
}

std::string format_double(double value, int digits) {
  std::ostringstream oss;
  oss.setf(std::ios::fixed);
  oss.precision(digits);
  oss << value;
  return oss.str();
}

std::string pad_left(std::string text, std::size_t width) {
  if (text.size() >= width) return text;
  return std::string(width - text.size(), ' ') + text;
}

std::string pad_right(std::string text, std::size_t width) {
  if (text.size() >= width) return text;
  text.append(width - text.size(), ' ');
  return text;
}

}  // namespace sfl::util
