#include "reputation/reputation.h"

#include <algorithm>
#include <cmath>

#include "util/require.h"

namespace sfl::reputation {

using sfl::util::checked_index;
using sfl::util::require;

double cosine_similarity(std::span<const double> a, std::span<const double> b) {
  require(a.size() == b.size(), "cosine similarity needs equal-length vectors");
  double dot = 0.0;
  double norm_a = 0.0;
  double norm_b = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    dot += a[i] * b[i];
    norm_a += a[i] * a[i];
    norm_b += b[i] * b[i];
  }
  if (norm_a <= 0.0 || norm_b <= 0.0) return 0.0;
  return std::clamp(dot / (std::sqrt(norm_a) * std::sqrt(norm_b)), -1.0, 1.0);
}

double leave_one_out_alignment(const std::vector<std::vector<double>>& updates,
                               const std::vector<double>& weights,
                               std::size_t index) {
  require(!updates.empty(), "need at least one update");
  require(updates.size() == weights.size(), "one weight per update required");
  checked_index(index, updates.size(), "update index");
  if (updates.size() == 1) return 0.0;

  const std::size_t dim = updates[index].size();
  std::vector<double> reference(dim, 0.0);
  double total_weight = 0.0;
  for (std::size_t u = 0; u < updates.size(); ++u) {
    if (u == index) continue;
    require(weights[u] > 0.0, "update weights must be > 0");
    require(updates[u].size() == dim, "update dimension mismatch");
    for (std::size_t i = 0; i < dim; ++i) {
      reference[i] += weights[u] * updates[u][i];
    }
    total_weight += weights[u];
  }
  for (auto& r : reference) r /= total_weight;
  return cosine_similarity(updates[index], reference);
}

double alignment_to_quality(double alignment) noexcept {
  return std::clamp((alignment + 1.0) / 2.0, 0.0, 1.0);
}

ReputationTracker::ReputationTracker(std::size_t num_clients, double prior,
                                     double ewma_alpha)
    : quality_(num_clients, prior),
      observations_(num_clients, 0),
      ewma_alpha_(ewma_alpha) {
  require(num_clients > 0, "reputation tracker needs at least one client");
  require(prior >= 0.0 && prior <= 1.0, "prior quality must be in [0, 1]");
  require(ewma_alpha > 0.0 && ewma_alpha <= 1.0, "ewma alpha must be in (0, 1]");
}

void ReputationTracker::observe(std::size_t client, double quality_observation) {
  checked_index(client, quality_.size(), "reputation client");
  require(quality_observation >= 0.0 && quality_observation <= 1.0,
          "quality observations must be in [0, 1]");
  quality_[client] =
      (1.0 - ewma_alpha_) * quality_[client] + ewma_alpha_ * quality_observation;
  ++observations_[client];
}

void ReputationTracker::observe_alignment(std::size_t client, double alignment) {
  require(alignment >= -1.0 - 1e-9 && alignment <= 1.0 + 1e-9,
          "alignment must be in [-1, 1]");
  observe(client, alignment_to_quality(std::clamp(alignment, -1.0, 1.0)));
}

double ReputationTracker::quality(std::size_t client) const {
  return quality_[checked_index(client, quality_.size(), "reputation client")];
}

std::size_t ReputationTracker::observation_count(std::size_t client) const {
  return observations_[checked_index(client, observations_.size(),
                                     "reputation client")];
}

}  // namespace sfl::reputation
