// Data-quality reputation tracking.
//
// The server cannot read client data, so it estimates quality from
// observable training signals. Two signals are supported:
//  - validation deltas (used by the orchestrator): how a client's solo
//    update moves a server-held validation loss — noisy-label clients
//    consistently increase it because their local optimum differs from the
//    clean task;
//  - update alignment (cosine similarity against a reference direction),
//    provided as a utility for leave-one-out style estimators.
// Either signal is folded into an EWMA reputation q-hat in [0, 1]. The
// valuation layer multiplies data size by q-hat, closing the loop:
// low-quality clients are worth less, win less, and cost the mechanism less
// (experiment E11).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace sfl::reputation {

/// Cosine similarity in [-1, 1]; returns 0 when either vector is all-zero.
[[nodiscard]] double cosine_similarity(std::span<const double> a,
                                       std::span<const double> b);

/// Leave-one-out alignment: cosine similarity between update `index` and
/// the weighted mean of the *other* updates. Removing the client's own
/// contribution avoids the self-correlation trap (every update is somewhat
/// aligned with an aggregate that contains it). `weights` must be positive
/// and one per update; with a single update the reference is empty and the
/// result is 0.
[[nodiscard]] double leave_one_out_alignment(
    const std::vector<std::vector<double>>& updates,
    const std::vector<double>& weights, std::size_t index);

/// Maps an alignment in [-1, 1] to a quality observation in [0, 1].
[[nodiscard]] double alignment_to_quality(double alignment) noexcept;

class ReputationTracker {
 public:
  /// All clients start at `prior` quality; `ewma_alpha` in (0, 1] is the
  /// weight of the newest observation.
  ReputationTracker(std::size_t num_clients, double prior = 0.8,
                    double ewma_alpha = 0.2);

  [[nodiscard]] std::size_t num_clients() const noexcept { return quality_.size(); }

  /// Blends a new quality observation (in [0, 1]) into the client's score.
  void observe(std::size_t client, double quality_observation);

  /// Convenience: observe from a raw update-alignment value in [-1, 1].
  void observe_alignment(std::size_t client, double alignment);

  [[nodiscard]] double quality(std::size_t client) const;
  [[nodiscard]] const std::vector<double>& quality_vector() const noexcept {
    return quality_;
  }
  [[nodiscard]] std::size_t observation_count(std::size_t client) const;

 private:
  std::vector<double> quality_;
  std::vector<std::size_t> observations_;
  double ewma_alpha_;
};

}  // namespace sfl::reputation
