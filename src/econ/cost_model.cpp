#include "econ/cost_model.h"

#include <cmath>

#include "util/require.h"

namespace sfl::econ {

using sfl::util::checked_index;
using sfl::util::require;

CostModel::CostModel(std::size_t num_clients, const CostModelSpec& spec,
                     const std::vector<double>& data_sizes, sfl::util::Rng& rng)
    : ar_rho_(spec.ar_rho), ar_sigma_(spec.ar_sigma) {
  require(num_clients > 0, "cost model needs at least one client");
  require(spec.base_sigma >= 0.0, "base_sigma must be >= 0");
  require(spec.ar_rho >= 0.0 && spec.ar_rho < 1.0, "ar_rho must be in [0, 1)");
  require(spec.ar_sigma >= 0.0, "ar_sigma must be >= 0");
  require(spec.size_cost_exponent == 0.0 || data_sizes.size() == num_clients,
          "size-cost correlation needs one data size per client");

  double mean_size = 1.0;
  if (spec.size_cost_exponent != 0.0) {
    double sum = 0.0;
    for (const double s : data_sizes) {
      require(s > 0.0, "data sizes must be > 0");
      sum += s;
    }
    mean_size = sum / static_cast<double>(num_clients);
  }

  base_.reserve(num_clients);
  for (std::size_t i = 0; i < num_clients; ++i) {
    double base = rng.lognormal(spec.base_mu, spec.base_sigma);
    if (spec.size_cost_exponent != 0.0) {
      base *= std::pow(data_sizes[i] / mean_size, spec.size_cost_exponent);
    }
    base_.push_back(base);
  }
  // Start disturbances at their stationary distribution.
  ar_state_.reserve(num_clients);
  const double stationary_sigma =
      ar_sigma_ > 0.0 ? ar_sigma_ / std::sqrt(1.0 - ar_rho_ * ar_rho_) : 0.0;
  for (std::size_t i = 0; i < num_clients; ++i) {
    ar_state_.push_back(rng.normal(0.0, stationary_sigma));
  }
}

std::vector<double> CostModel::draw_round(sfl::util::Rng& rng) {
  std::vector<double> costs(base_.size());
  for (std::size_t i = 0; i < base_.size(); ++i) {
    ar_state_[i] = ar_rho_ * ar_state_[i] + rng.normal(0.0, ar_sigma_);
    costs[i] = base_[i] * std::exp(ar_state_[i]);
  }
  return costs;
}

double CostModel::expected_cost(std::size_t client) const {
  checked_index(client, base_.size(), "cost model client");
  const double stationary_var =
      ar_sigma_ > 0.0 ? ar_sigma_ * ar_sigma_ / (1.0 - ar_rho_ * ar_rho_) : 0.0;
  return base_[client] * std::exp(stationary_var / 2.0);
}

double CostModel::base_cost(std::size_t client) const {
  return base_[checked_index(client, base_.size(), "cost model client")];
}

}  // namespace sfl::econ
