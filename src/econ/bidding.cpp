#include "econ/bidding.h"

#include "util/require.h"
#include "util/string_utils.h"

namespace sfl::econ {

using sfl::util::require;

double TruthfulStrategy::bid(double true_cost, std::size_t /*round*/,
                             sfl::util::Rng& /*rng*/) const {
  require(true_cost >= 0.0, "true cost must be >= 0");
  return true_cost;
}

ScaledMisreportStrategy::ScaledMisreportStrategy(double factor) : factor_(factor) {
  require(factor > 0.0, "misreport factor must be > 0");
}

double ScaledMisreportStrategy::bid(double true_cost, std::size_t /*round*/,
                                    sfl::util::Rng& /*rng*/) const {
  require(true_cost >= 0.0, "true cost must be >= 0");
  return factor_ * true_cost;
}

std::string ScaledMisreportStrategy::name() const {
  return "misreport-x" + sfl::util::format_double(factor_, 2);
}

JitterStrategy::JitterStrategy(double sigma) : sigma_(sigma) {
  require(sigma >= 0.0, "jitter sigma must be >= 0");
}

double JitterStrategy::bid(double true_cost, std::size_t /*round*/,
                           sfl::util::Rng& rng) const {
  require(true_cost >= 0.0, "true cost must be >= 0");
  return true_cost * rng.lognormal(0.0, sigma_);
}

}  // namespace sfl::econ
