// Utility accounting across a simulation run.
//
// The ledger records, per round, who won, what they were paid, what their
// true cost was, and the server-side value realized. From that it derives
// the quantities the evaluation reports: client utility (payment - cost),
// server utility (value - payment), social welfare (value - cost),
// participation counts, and per-client fairness inputs.
#pragma once

#include <cstddef>
#include <vector>

namespace sfl::econ {

struct LedgerEntry {
  std::size_t round = 0;
  std::size_t client = 0;
  double value = 0.0;      ///< server's valuation of this participation
  double payment = 0.0;
  double true_cost = 0.0;
};

class UtilityLedger {
 public:
  explicit UtilityLedger(std::size_t num_clients);

  void record(const LedgerEntry& entry);

  [[nodiscard]] std::size_t num_clients() const noexcept {
    return client_utility_.size();
  }
  [[nodiscard]] std::size_t entries() const noexcept { return entries_; }

  /// Cumulative utility (sum of payment - true_cost) of one client.
  [[nodiscard]] double client_utility(std::size_t client) const;

  /// Number of rounds a client won.
  [[nodiscard]] std::size_t participation_count(std::size_t client) const;

  /// Sum over all entries of (value - payment).
  [[nodiscard]] double server_utility() const noexcept { return server_utility_; }

  /// Sum over all entries of (value - true_cost).
  [[nodiscard]] double social_welfare() const noexcept { return welfare_; }

  /// Sum of all payments.
  [[nodiscard]] double total_payments() const noexcept { return payments_; }

  /// Fraction of entries with payment >= true_cost (IR satisfaction rate).
  [[nodiscard]] double individually_rational_fraction() const noexcept;

  /// Per-client participation counts as doubles (fairness-index input).
  [[nodiscard]] std::vector<double> participation_vector() const;

  /// Per-client cumulative utilities.
  [[nodiscard]] std::vector<double> utility_vector() const;

 private:
  std::vector<double> client_utility_;
  std::vector<std::size_t> participation_;
  double server_utility_ = 0.0;
  double welfare_ = 0.0;
  double payments_ = 0.0;
  std::size_t entries_ = 0;
  std::size_t ir_satisfied_ = 0;
};

}  // namespace sfl::econ
