// Server budget accounting for long-term payment constraints.
#pragma once

#include <cstddef>
#include <vector>

namespace sfl::econ {

/// Tracks cumulative payments against a per-round budget target B-bar and
/// reports violation statistics. Purely observational — enforcement is the
/// mechanism's job.
class BudgetTracker {
 public:
  explicit BudgetTracker(double per_round_budget);

  void record_round(double payment);

  [[nodiscard]] std::size_t rounds() const noexcept { return payments_.size(); }
  [[nodiscard]] double per_round_budget() const noexcept { return per_round_budget_; }
  [[nodiscard]] double cumulative_payment() const noexcept { return cumulative_; }

  /// B-bar * t: what the long-term constraint allows up to now.
  [[nodiscard]] double allowed_so_far() const noexcept;

  /// max(cumulative - allowed, 0).
  [[nodiscard]] double cumulative_violation() const noexcept;

  /// Time-average payment per round (0 before any round).
  [[nodiscard]] double average_payment() const noexcept;

  /// Fraction of rounds whose *running average* payment exceeded B-bar.
  [[nodiscard]] double violation_round_fraction() const noexcept;

  /// Largest cumulative overshoot observed at any prefix (the "how deep in
  /// debt did we ever get" statistic).
  [[nodiscard]] double peak_violation() const noexcept { return peak_violation_; }

  [[nodiscard]] const std::vector<double>& round_payments() const noexcept {
    return payments_;
  }

 private:
  double per_round_budget_;
  double cumulative_ = 0.0;
  double peak_violation_ = 0.0;
  std::size_t violating_rounds_ = 0;
  std::vector<double> payments_;
};

}  // namespace sfl::econ
