// Adaptive bidding via adversarial bandits (EXP3).
//
// Strategic clients rarely know the mechanism's rules well enough to derive
// a best response analytically; they experiment. Each client runs EXP3 over
// a grid of bid factors (bid = factor * cost), feeding back the realized
// per-round utility. Against a DSIC mechanism the truthful arm (factor 1)
// is the best arm, so learning dynamics converge toward truth-telling —
// the empirical counterpart of the dominant-strategy guarantee (experiment
// E13). Against pay-as-bid the best arm is an overbid, and the same
// dynamics drift the market away from truth.
#pragma once

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace sfl::econ {

struct Exp3Config {
  /// Candidate bid multipliers (non-empty, all > 0).
  std::vector<double> factor_grid{0.7, 0.85, 1.0, 1.2, 1.5};
  /// Exploration rate gamma in (0, 1].
  double exploration = 0.1;
  /// Utilities are mapped to [0, 1] rewards via
  /// reward = clamp(0.5 + utility / (2 * reward_scale), 0, 1); pick
  /// reward_scale around the largest plausible per-round |utility|.
  double reward_scale = 5.0;
};

/// One client's EXP3 learner over the bid-factor grid.
class Exp3BiddingLearner {
 public:
  Exp3BiddingLearner(const Exp3Config& config, std::uint64_t seed);

  /// Samples an arm from the current mixed strategy; remember it until the
  /// matching observe_utility call.
  [[nodiscard]] double choose_factor();

  /// Importance-weighted EXP3 update for the last chosen arm. Must follow a
  /// choose_factor call.
  void observe_utility(double utility);

  /// Current mixed strategy over the grid (sums to 1).
  [[nodiscard]] std::vector<double> strategy() const;

  /// Probability-weighted mean factor of the current strategy.
  [[nodiscard]] double expected_factor() const;

  /// The factor with the highest current probability.
  [[nodiscard]] double modal_factor() const;

  [[nodiscard]] const std::vector<double>& factor_grid() const noexcept {
    return config_.factor_grid;
  }
  [[nodiscard]] std::size_t plays() const noexcept { return plays_; }

 private:
  Exp3Config config_;
  sfl::util::Rng rng_;
  std::vector<double> log_weights_;
  std::size_t last_arm_ = 0;
  bool awaiting_feedback_ = false;
  std::size_t plays_ = 0;
};

}  // namespace sfl::econ
