// Client bidding strategies.
//
// Under a truthful mechanism the dominant strategy is bid = cost; the other
// strategies exist to *test* that claim (E4) and to show what happens to
// non-truthful baselines when clients strategize.
#pragma once

#include <memory>
#include <string>

#include "util/rng.h"

namespace sfl::econ {

class BiddingStrategy {
 public:
  virtual ~BiddingStrategy() = default;

  /// The bid a client submits given its true per-round cost.
  [[nodiscard]] virtual double bid(double true_cost, std::size_t round,
                                   sfl::util::Rng& rng) const = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// bid = cost.
class TruthfulStrategy final : public BiddingStrategy {
 public:
  [[nodiscard]] double bid(double true_cost, std::size_t round,
                           sfl::util::Rng& rng) const override;
  [[nodiscard]] std::string name() const override { return "truthful"; }
};

/// bid = factor * cost (factor > 1 overbids, < 1 underbids).
class ScaledMisreportStrategy final : public BiddingStrategy {
 public:
  explicit ScaledMisreportStrategy(double factor);
  [[nodiscard]] double bid(double true_cost, std::size_t round,
                           sfl::util::Rng& rng) const override;
  [[nodiscard]] std::string name() const override;
  [[nodiscard]] double factor() const noexcept { return factor_; }

 private:
  double factor_;
};

/// bid = cost * exp(N(0, sigma^2)) — noisy/confused reporting.
class JitterStrategy final : public BiddingStrategy {
 public:
  explicit JitterStrategy(double sigma);
  [[nodiscard]] double bid(double true_cost, std::size_t round,
                           sfl::util::Rng& rng) const override;
  [[nodiscard]] std::string name() const override { return "jitter"; }

 private:
  double sigma_;
};

}  // namespace sfl::econ
