// Client cost processes.
//
// Substitutes for the measured device-cost traces this paper class uses
// (DESIGN.md §4): per-client lognormal base costs capture heavy-tailed
// heterogeneity across devices, and an AR(1) multiplicative disturbance
// captures temporal persistence (a busy/charging device stays busy for a
// while). Costs are private to the client: mechanisms only ever see bids.
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.h"

namespace sfl::econ {

struct CostModelSpec {
  double base_mu = 0.0;       ///< lognormal location of per-client base cost
  double base_sigma = 0.5;    ///< lognormal scale (cross-client heterogeneity)
  double ar_rho = 0.7;        ///< AR(1) persistence of the temporal disturbance
  double ar_sigma = 0.2;      ///< innovation stddev of the disturbance
  /// Optional correlation knob: base cost multiplied by (data_size/mean)^gamma,
  /// modelling "more data costs more to train on". 0 disables.
  double size_cost_exponent = 0.0;
};

class CostModel {
 public:
  /// Draws per-client base costs; `data_sizes` (one per client) feeds the
  /// size-cost correlation and may be empty when the exponent is 0.
  CostModel(std::size_t num_clients, const CostModelSpec& spec,
            const std::vector<double>& data_sizes, sfl::util::Rng& rng);

  [[nodiscard]] std::size_t num_clients() const noexcept { return base_.size(); }

  /// Advances every client's disturbance one round and returns the realized
  /// cost vector c_i(t) = base_i * exp(state_i(t)).
  [[nodiscard]] std::vector<double> draw_round(sfl::util::Rng& rng);

  /// Stationary expected cost of one client (base_i * E[exp(state)]).
  [[nodiscard]] double expected_cost(std::size_t client) const;

  [[nodiscard]] double base_cost(std::size_t client) const;

 private:
  std::vector<double> base_;
  std::vector<double> ar_state_;
  double ar_rho_;
  double ar_sigma_;
};

}  // namespace sfl::econ
