#include "econ/learning_bidder.h"

#include <algorithm>
#include <cmath>

#include "util/require.h"

namespace sfl::econ {

using sfl::util::require;

Exp3BiddingLearner::Exp3BiddingLearner(const Exp3Config& config,
                                       std::uint64_t seed)
    : config_(config), rng_(seed), log_weights_(config.factor_grid.size(), 0.0) {
  require(!config.factor_grid.empty(), "factor grid must be non-empty");
  for (const double f : config.factor_grid) {
    require(f > 0.0, "bid factors must be > 0");
  }
  require(config.exploration > 0.0 && config.exploration <= 1.0,
          "exploration must be in (0, 1]");
  require(config.reward_scale > 0.0, "reward scale must be > 0");
}

std::vector<double> Exp3BiddingLearner::strategy() const {
  // Softmax of log-weights with uniform exploration mixing.
  const double max_log =
      *std::max_element(log_weights_.begin(), log_weights_.end());
  std::vector<double> probs(log_weights_.size());
  double total = 0.0;
  for (std::size_t i = 0; i < probs.size(); ++i) {
    probs[i] = std::exp(log_weights_[i] - max_log);
    total += probs[i];
  }
  const double k = static_cast<double>(probs.size());
  for (auto& p : probs) {
    p = (1.0 - config_.exploration) * (p / total) + config_.exploration / k;
  }
  return probs;
}

double Exp3BiddingLearner::choose_factor() {
  require(!awaiting_feedback_,
          "choose_factor called twice without observe_utility");
  const std::vector<double> probs = strategy();
  last_arm_ = rng_.categorical(probs);
  awaiting_feedback_ = true;
  ++plays_;
  return config_.factor_grid[last_arm_];
}

void Exp3BiddingLearner::observe_utility(double utility) {
  require(awaiting_feedback_, "observe_utility without a pending choice");
  awaiting_feedback_ = false;
  const double reward = std::clamp(
      0.5 + utility / (2.0 * config_.reward_scale), 0.0, 1.0);
  const std::vector<double> probs = strategy();
  const double k = static_cast<double>(config_.factor_grid.size());
  // Importance-weighted reward estimate for the played arm.
  const double estimate = reward / std::max(probs[last_arm_], 1e-12);
  log_weights_[last_arm_] += config_.exploration * estimate / k;
  // Keep log-weights bounded for numerical safety (shifting all weights
  // equally does not change the softmax).
  const double max_log =
      *std::max_element(log_weights_.begin(), log_weights_.end());
  if (max_log > 200.0) {
    for (auto& w : log_weights_) w -= max_log - 100.0;
  }
}

double Exp3BiddingLearner::expected_factor() const {
  const std::vector<double> probs = strategy();
  double mean = 0.0;
  for (std::size_t i = 0; i < probs.size(); ++i) {
    mean += probs[i] * config_.factor_grid[i];
  }
  return mean;
}

double Exp3BiddingLearner::modal_factor() const {
  const std::vector<double> probs = strategy();
  const auto best = std::distance(
      probs.begin(), std::max_element(probs.begin(), probs.end()));
  return config_.factor_grid[static_cast<std::size_t>(best)];
}

}  // namespace sfl::econ
