#include "econ/ledger.h"

#include "util/require.h"

namespace sfl::econ {

using sfl::util::checked_index;
using sfl::util::require;

UtilityLedger::UtilityLedger(std::size_t num_clients)
    : client_utility_(num_clients, 0.0), participation_(num_clients, 0) {
  require(num_clients > 0, "ledger needs at least one client");
}

void UtilityLedger::record(const LedgerEntry& entry) {
  checked_index(entry.client, client_utility_.size(), "ledger client");
  require(entry.payment >= 0.0, "payments must be >= 0");
  require(entry.true_cost >= 0.0, "true costs must be >= 0");
  client_utility_[entry.client] += entry.payment - entry.true_cost;
  ++participation_[entry.client];
  server_utility_ += entry.value - entry.payment;
  welfare_ += entry.value - entry.true_cost;
  payments_ += entry.payment;
  ++entries_;
  if (entry.payment >= entry.true_cost - 1e-12) ++ir_satisfied_;
}

double UtilityLedger::client_utility(std::size_t client) const {
  return client_utility_[checked_index(client, client_utility_.size(),
                                       "ledger client")];
}

std::size_t UtilityLedger::participation_count(std::size_t client) const {
  return participation_[checked_index(client, participation_.size(),
                                      "ledger client")];
}

double UtilityLedger::individually_rational_fraction() const noexcept {
  return entries_ == 0
             ? 1.0
             : static_cast<double>(ir_satisfied_) / static_cast<double>(entries_);
}

std::vector<double> UtilityLedger::participation_vector() const {
  std::vector<double> out(participation_.size());
  for (std::size_t i = 0; i < participation_.size(); ++i) {
    out[i] = static_cast<double>(participation_[i]);
  }
  return out;
}

std::vector<double> UtilityLedger::utility_vector() const { return client_utility_; }

}  // namespace sfl::econ
