#include "econ/budget_tracker.h"

#include <algorithm>

#include "util/require.h"

namespace sfl::econ {

using sfl::util::require;

BudgetTracker::BudgetTracker(double per_round_budget)
    : per_round_budget_(per_round_budget) {
  require(per_round_budget >= 0.0, "per-round budget must be >= 0");
}

void BudgetTracker::record_round(double payment) {
  require(payment >= 0.0, "payments must be >= 0");
  cumulative_ += payment;
  payments_.push_back(payment);
  const double allowed = allowed_so_far();
  peak_violation_ = std::max(peak_violation_, cumulative_ - allowed);
  if (cumulative_ > allowed) ++violating_rounds_;
}

double BudgetTracker::allowed_so_far() const noexcept {
  return per_round_budget_ * static_cast<double>(payments_.size());
}

double BudgetTracker::cumulative_violation() const noexcept {
  return std::max(cumulative_ - allowed_so_far(), 0.0);
}

double BudgetTracker::average_payment() const noexcept {
  return payments_.empty() ? 0.0
                           : cumulative_ / static_cast<double>(payments_.size());
}

double BudgetTracker::violation_round_fraction() const noexcept {
  return payments_.empty() ? 0.0
                           : static_cast<double>(violating_rounds_) /
                                 static_cast<double>(payments_.size());
}

}  // namespace sfl::econ
