// Lyapunov virtual queues for long-term constraints.
//
// A long-term average constraint  lim (1/K) sum_t a(t) <= s  is handled by
// the virtual queue  Q(t+1) = max(Q(t) + a(t) - s, 0).  Queue stability
// (Q(t)/t -> 0) implies the constraint holds; the drift-plus-penalty method
// trades queue growth against per-round objective via the V parameter.
#pragma once

#include <cstddef>
#include <vector>

#include "util/require.h"

namespace sfl::lyapunov {

class VirtualQueue {
 public:
  /// `service_rate` is the per-round long-term allowance (s above); >= 0.
  explicit VirtualQueue(double service_rate, double initial_backlog = 0.0);

  /// Q <- max(Q + arrival - service_rate, 0). `arrival` >= 0.
  void update(double arrival);

  /// Q <- max(Q + arrival - service, 0) with a round-specific service
  /// allowance (time-varying constraints, e.g. seasonal budgets).
  void update_with_service(double arrival, double service);

  [[nodiscard]] double backlog() const noexcept { return backlog_; }
  [[nodiscard]] double service_rate() const noexcept { return service_rate_; }
  [[nodiscard]] std::size_t updates() const noexcept { return updates_; }

  /// Time-average backlog over all updates so far (0 before any update);
  /// a bounded value as t grows certifies stability.
  [[nodiscard]] double average_backlog() const noexcept;

  /// Backlog divided by rounds elapsed — the constraint-violation bound
  /// certificate (Q(t)/t >= average violation up to t).
  [[nodiscard]] double normalized_backlog() const noexcept;

  void reset(double initial_backlog = 0.0);

 private:
  double service_rate_;
  double backlog_;
  double backlog_sum_ = 0.0;
  std::size_t updates_ = 0;
};

/// A bank of per-client virtual queues (the Z_i sustainability queues).
class QueueBank {
 public:
  /// One queue per client with the given per-round service rates (>= 0).
  explicit QueueBank(const std::vector<double>& service_rates);

  [[nodiscard]] std::size_t size() const noexcept { return queues_.size(); }
  [[nodiscard]] const VirtualQueue& queue(std::size_t index) const;

  /// Applies one round of arrivals (one entry per client, >= 0).
  void update_all(const std::vector<double>& arrivals);

  [[nodiscard]] double backlog(std::size_t index) const;
  [[nodiscard]] double max_backlog() const noexcept;
  [[nodiscard]] double total_backlog() const noexcept;

 private:
  std::vector<VirtualQueue> queues_;
};

}  // namespace sfl::lyapunov
