#include "lyapunov/virtual_queue.h"

#include <algorithm>

namespace sfl::lyapunov {

using sfl::util::checked_index;
using sfl::util::require;

VirtualQueue::VirtualQueue(double service_rate, double initial_backlog)
    : service_rate_(service_rate), backlog_(initial_backlog) {
  require(service_rate >= 0.0, "service rate must be >= 0");
  require(initial_backlog >= 0.0, "initial backlog must be >= 0");
}

void VirtualQueue::update(double arrival) {
  update_with_service(arrival, service_rate_);
}

void VirtualQueue::update_with_service(double arrival, double service) {
  require(arrival >= 0.0, "queue arrivals must be >= 0");
  require(service >= 0.0, "queue service must be >= 0");
  backlog_ = std::max(backlog_ + arrival - service, 0.0);
  backlog_sum_ += backlog_;
  ++updates_;
}

double VirtualQueue::average_backlog() const noexcept {
  return updates_ > 0 ? backlog_sum_ / static_cast<double>(updates_) : 0.0;
}

double VirtualQueue::normalized_backlog() const noexcept {
  return updates_ > 0 ? backlog_ / static_cast<double>(updates_) : 0.0;
}

void VirtualQueue::reset(double initial_backlog) {
  require(initial_backlog >= 0.0, "initial backlog must be >= 0");
  backlog_ = initial_backlog;
  backlog_sum_ = 0.0;
  updates_ = 0;
}

QueueBank::QueueBank(const std::vector<double>& service_rates) {
  require(!service_rates.empty(), "queue bank needs at least one queue");
  queues_.reserve(service_rates.size());
  for (const double rate : service_rates) {
    queues_.emplace_back(rate);
  }
}

const VirtualQueue& QueueBank::queue(std::size_t index) const {
  return queues_[checked_index(index, queues_.size(), "queue bank")];
}

void QueueBank::update_all(const std::vector<double>& arrivals) {
  require(arrivals.size() == queues_.size(), "one arrival per queue required");
  for (std::size_t i = 0; i < queues_.size(); ++i) {
    queues_[i].update(arrivals[i]);
  }
}

double QueueBank::backlog(std::size_t index) const { return queue(index).backlog(); }

double QueueBank::max_backlog() const noexcept {
  double best = 0.0;
  for (const auto& q : queues_) best = std::max(best, q.backlog());
  return best;
}

double QueueBank::total_backlog() const noexcept {
  double sum = 0.0;
  for (const auto& q : queues_) sum += q.backlog();
  return sum;
}

}  // namespace sfl::lyapunov
