#include "fl/aggregation.h"

#include "util/require.h"

namespace sfl::fl {

using sfl::util::require;

std::vector<double> aggregate_weighted_deltas(const std::vector<LocalUpdate>& updates,
                                              const std::vector<double>& weights) {
  require(!updates.empty(), "cannot aggregate zero updates");
  require(updates.size() == weights.size(), "one weight per update required");
  double total_weight = 0.0;
  for (const double w : weights) {
    require(w >= 0.0, "aggregation weights must be >= 0");
    total_weight += w;
  }
  require(total_weight > 0.0, "aggregation weights must not all be zero");

  const std::size_t dim = updates.front().delta.size();
  std::vector<double> aggregate(dim, 0.0);
  for (std::size_t u = 0; u < updates.size(); ++u) {
    require(updates[u].delta.size() == dim, "update dimension mismatch");
    const double scale = weights[u] / total_weight;
    for (std::size_t i = 0; i < dim; ++i) {
      aggregate[i] += scale * updates[u].delta[i];
    }
  }
  return aggregate;
}

std::vector<double> aggregate_fedavg(const std::vector<LocalUpdate>& updates) {
  std::vector<double> weights;
  weights.reserve(updates.size());
  for (const auto& update : updates) {
    weights.push_back(static_cast<double>(update.examples));
  }
  return aggregate_weighted_deltas(updates, weights);
}

void apply_server_update(std::span<double> params, std::span<const double> update,
                         double server_learning_rate) {
  require(params.size() == update.size(), "update size mismatch");
  require(server_learning_rate > 0.0, "server learning rate must be > 0");
  for (std::size_t i = 0; i < params.size(); ++i) {
    params[i] += server_learning_rate * update[i];
  }
}

}  // namespace sfl::fl
