// Model parameter (de)serialization.
//
// Text format, one value per line with full round-trip precision, preceded
// by a small header (magic, parameter count). Text keeps checkpoints
// diffable and platform-independent; models at this scale (~1e4-1e5
// parameters) make the size overhead irrelevant.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "fl/model.h"

namespace sfl::fl {

/// Writes `model`'s parameters to `out`. Throws on stream failure.
void save_parameters(const Model& model, std::ostream& out);

/// Reads parameters written by save_parameters and installs them into
/// `model`; the parameter count must match. Throws std::invalid_argument on
/// malformed input or count mismatch.
void load_parameters(Model& model, std::istream& in);

/// Convenience file wrappers (throw std::invalid_argument on I/O failure).
void save_parameters_to_file(const Model& model, const std::string& path);
void load_parameters_from_file(Model& model, const std::string& path);

}  // namespace sfl::fl
