// One-hidden-layer multilayer perceptron (ReLU + softmax cross-entropy).
//
// Parameter layout: W1 (hidden x in) row-major, b1 (hidden), W2 (out x
// hidden) row-major, b2 (out). Initialization is He-scaled normal from an
// explicit RNG, so federated experiments are reproducible.
#pragma once

#include "data/matrix.h"
#include "fl/model.h"
#include "util/rng.h"

namespace sfl::fl {

class Mlp final : public Model {
 public:
  Mlp(std::size_t feature_dim, std::size_t hidden_dim, std::size_t num_classes,
      sfl::util::Rng& rng, double l2_penalty = 1e-4);

  [[nodiscard]] std::unique_ptr<Model> clone() const override;
  [[nodiscard]] std::size_t parameter_count() const noexcept override;
  [[nodiscard]] std::vector<double> parameters() const override;
  void set_parameters(std::span<const double> params) override;
  double loss_and_gradient(const data::Dataset& dataset,
                           std::span<const std::size_t> batch,
                           std::span<double> grad_out) const override;
  [[nodiscard]] double loss(const data::Dataset& dataset,
                            std::span<const std::size_t> batch) const override;
  [[nodiscard]] int predict_class(std::span<const double> features) const override;

  [[nodiscard]] std::size_t hidden_dim() const noexcept { return hidden_dim_; }

 private:
  /// Forward pass; fills `hidden` (post-ReLU) and returns class
  /// probabilities.
  [[nodiscard]] std::vector<double> forward(std::span<const double> features,
                                            std::vector<double>& hidden) const;

  std::size_t feature_dim_;
  std::size_t hidden_dim_;
  std::size_t num_classes_;
  double l2_penalty_;
  data::Matrix w1_;            // hidden x in
  std::vector<double> b1_;     // hidden
  data::Matrix w2_;            // out x hidden
  std::vector<double> b2_;     // out
};

}  // namespace sfl::fl
