// First-order optimizers for local client training.
//
// Optimizers are stateful (momentum/Adam moments sized to the parameter
// vector on first step) and are created fresh for each client round, matching
// the synchronous FedAvg convention that local optimizer state is not carried
// across rounds.
#pragma once

#include <memory>
#include <span>
#include <string>

namespace sfl::fl {

enum class OptimizerKind { kSgd, kMomentum, kAdam };

[[nodiscard]] std::string to_string(OptimizerKind kind);

struct OptimizerSpec {
  OptimizerKind kind = OptimizerKind::kSgd;
  double learning_rate = 0.05;
  double momentum = 0.9;    ///< kMomentum only
  double beta1 = 0.9;       ///< kAdam only
  double beta2 = 0.999;     ///< kAdam only
  double epsilon = 1e-8;    ///< kAdam only
};

class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// In-place parameter update from a gradient of the same length.
  virtual void step(std::span<double> params, std::span<const double> grad) = 0;

  /// Clears accumulated state (moments, step counters).
  virtual void reset() = 0;

  [[nodiscard]] virtual double learning_rate() const noexcept = 0;
  virtual void set_learning_rate(double lr) = 0;
};

/// Factory; validates the spec (positive learning rate, betas in [0,1), ...).
[[nodiscard]] std::unique_ptr<Optimizer> make_optimizer(const OptimizerSpec& spec);

}  // namespace sfl::fl
