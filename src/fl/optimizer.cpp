#include "fl/optimizer.h"

#include <cmath>
#include <vector>

#include "util/require.h"

namespace sfl::fl {

using sfl::util::require;

std::string to_string(OptimizerKind kind) {
  switch (kind) {
    case OptimizerKind::kSgd: return "sgd";
    case OptimizerKind::kMomentum: return "momentum";
    case OptimizerKind::kAdam: return "adam";
  }
  return "unknown";
}

namespace {

class SgdOptimizer final : public Optimizer {
 public:
  explicit SgdOptimizer(double lr) : lr_(lr) {}

  void step(std::span<double> params, std::span<const double> grad) override {
    require(params.size() == grad.size(), "parameter/gradient size mismatch");
    for (std::size_t i = 0; i < params.size(); ++i) {
      params[i] -= lr_ * grad[i];
    }
  }

  void reset() override {}
  [[nodiscard]] double learning_rate() const noexcept override { return lr_; }
  void set_learning_rate(double lr) override {
    require(lr > 0.0, "learning rate must be > 0");
    lr_ = lr;
  }

 private:
  double lr_;
};

class MomentumOptimizer final : public Optimizer {
 public:
  MomentumOptimizer(double lr, double momentum) : lr_(lr), momentum_(momentum) {}

  void step(std::span<double> params, std::span<const double> grad) override {
    require(params.size() == grad.size(), "parameter/gradient size mismatch");
    if (velocity_.size() != params.size()) {
      velocity_.assign(params.size(), 0.0);
    }
    for (std::size_t i = 0; i < params.size(); ++i) {
      velocity_[i] = momentum_ * velocity_[i] - lr_ * grad[i];
      params[i] += velocity_[i];
    }
  }

  void reset() override { velocity_.clear(); }
  [[nodiscard]] double learning_rate() const noexcept override { return lr_; }
  void set_learning_rate(double lr) override {
    require(lr > 0.0, "learning rate must be > 0");
    lr_ = lr;
  }

 private:
  double lr_;
  double momentum_;
  std::vector<double> velocity_;
};

class AdamOptimizer final : public Optimizer {
 public:
  AdamOptimizer(double lr, double beta1, double beta2, double epsilon)
      : lr_(lr), beta1_(beta1), beta2_(beta2), epsilon_(epsilon) {}

  void step(std::span<double> params, std::span<const double> grad) override {
    require(params.size() == grad.size(), "parameter/gradient size mismatch");
    if (m_.size() != params.size()) {
      m_.assign(params.size(), 0.0);
      v_.assign(params.size(), 0.0);
      steps_ = 0;
    }
    ++steps_;
    const double bias1 = 1.0 - std::pow(beta1_, static_cast<double>(steps_));
    const double bias2 = 1.0 - std::pow(beta2_, static_cast<double>(steps_));
    for (std::size_t i = 0; i < params.size(); ++i) {
      m_[i] = beta1_ * m_[i] + (1.0 - beta1_) * grad[i];
      v_[i] = beta2_ * v_[i] + (1.0 - beta2_) * grad[i] * grad[i];
      const double m_hat = m_[i] / bias1;
      const double v_hat = v_[i] / bias2;
      params[i] -= lr_ * m_hat / (std::sqrt(v_hat) + epsilon_);
    }
  }

  void reset() override {
    m_.clear();
    v_.clear();
    steps_ = 0;
  }

  [[nodiscard]] double learning_rate() const noexcept override { return lr_; }
  void set_learning_rate(double lr) override {
    require(lr > 0.0, "learning rate must be > 0");
    lr_ = lr;
  }

 private:
  double lr_;
  double beta1_;
  double beta2_;
  double epsilon_;
  std::vector<double> m_;
  std::vector<double> v_;
  std::size_t steps_ = 0;
};

}  // namespace

std::unique_ptr<Optimizer> make_optimizer(const OptimizerSpec& spec) {
  require(spec.learning_rate > 0.0, "learning rate must be > 0");
  switch (spec.kind) {
    case OptimizerKind::kSgd:
      return std::make_unique<SgdOptimizer>(spec.learning_rate);
    case OptimizerKind::kMomentum:
      require(spec.momentum >= 0.0 && spec.momentum < 1.0,
              "momentum must be in [0, 1)");
      return std::make_unique<MomentumOptimizer>(spec.learning_rate, spec.momentum);
    case OptimizerKind::kAdam:
      require(spec.beta1 >= 0.0 && spec.beta1 < 1.0, "beta1 must be in [0, 1)");
      require(spec.beta2 >= 0.0 && spec.beta2 < 1.0, "beta2 must be in [0, 1)");
      require(spec.epsilon > 0.0, "epsilon must be > 0");
      return std::make_unique<AdamOptimizer>(spec.learning_rate, spec.beta1,
                                             spec.beta2, spec.epsilon);
  }
  throw std::invalid_argument("unknown optimizer kind");
}

}  // namespace sfl::fl
