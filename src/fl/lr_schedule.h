// Learning-rate schedules across federated rounds.
//
// Convergence analyses for this paper class assume a decaying step size
// (eta_t ~ c/(gamma + t)); the schedules here let the trainer follow that
// theory (kInverseTime) or the common practical alternatives. A schedule
// maps the *global round index* to the local-step learning rate used by
// every participating client that round.
#pragma once

#include <cstddef>

namespace sfl::fl {

enum class LrScheduleKind {
  kConstant,     ///< eta_t = base
  kInverseTime,  ///< eta_t = base / (1 + t / tau)
  kStep,         ///< eta_t = base * factor^(t / step_every)
  kCosine,       ///< cosine annealing from base to floor over `horizon`
};

struct LrScheduleSpec {
  LrScheduleKind kind = LrScheduleKind::kConstant;
  double base_rate = 0.05;
  double tau = 50.0;            ///< kInverseTime time constant (> 0)
  double step_factor = 0.5;     ///< kStep multiplier in (0, 1]
  std::size_t step_every = 50;  ///< kStep period (> 0)
  std::size_t horizon = 200;    ///< kCosine annealing length (> 0)
  double floor_rate = 1e-4;     ///< kCosine terminal rate (>= 0, <= base)
};

class LrSchedule {
 public:
  /// Validates the spec (throws std::invalid_argument on nonsense).
  explicit LrSchedule(const LrScheduleSpec& spec);

  /// Learning rate for global round `round` (0-based). Always > 0.
  [[nodiscard]] double rate(std::size_t round) const;

  [[nodiscard]] const LrScheduleSpec& spec() const noexcept { return spec_; }

 private:
  LrScheduleSpec spec_;
};

}  // namespace sfl::fl
