// Synchronous federated training driver.
//
// FederatedTrainer owns the global model and per-client RNG streams; each
// round it trains the given participant set locally (optionally in parallel)
// and applies the FedAvg aggregate. Client selection is the mechanism's job
// (see sfl::core); this class is selection-agnostic.
#pragma once

#include <memory>
#include <optional>
#include <vector>

#include "data/partition.h"
#include "fl/aggregation.h"
#include "fl/local_trainer.h"
#include "fl/lr_schedule.h"
#include "fl/model.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace sfl::fl {

struct RoundSummary {
  std::size_t participants = 0;
  double mean_initial_loss = 0.0;  ///< mean first-step minibatch loss
  double mean_final_loss = 0.0;    ///< mean last-step minibatch loss
  double update_norm = 0.0;        ///< L2 norm of the applied global update
};

/// Full per-round detail: the individual local updates (aligned with the
/// participant order passed in) and the aggregate applied to the global
/// model. Reputation tracking consumes the per-client deltas.
struct DetailedRound {
  RoundSummary summary;
  std::vector<LocalUpdate> updates;
  std::vector<double> aggregate;
};

class FederatedTrainer {
 public:
  /// `data` must outlive the trainer. `pool` is optional; when supplied,
  /// local training fans out across its threads (results are identical to
  /// sequential execution because each client has its own RNG stream and
  /// aggregation order is fixed).
  FederatedTrainer(const data::FederatedDataset& data, std::unique_ptr<Model> model,
                   LocalTrainingSpec spec, std::uint64_t seed,
                   sfl::util::ThreadPool* pool = nullptr);

  /// Runs one synchronous round with the given participant client ids
  /// (indices into the federated dataset, no duplicates). An empty
  /// participant set is a no-op round (returns a zeroed summary).
  RoundSummary run_round(std::span<const std::size_t> participants);

  /// run_round plus the individual local updates and the applied aggregate.
  DetailedRound run_round_detailed(std::span<const std::size_t> participants);

  /// Loss/accuracy of the current global model on the held-out test set.
  [[nodiscard]] EvalResult evaluate_test() const;

  /// Loss/accuracy on one client's shard (per-client bias diagnostics).
  [[nodiscard]] EvalResult evaluate_shard(std::size_t client) const;

  [[nodiscard]] const Model& model() const noexcept { return *model_; }
  [[nodiscard]] std::vector<double> parameters() const { return model_->parameters(); }
  void set_parameters(std::span<const double> params) { model_->set_parameters(params); }

  [[nodiscard]] std::size_t num_clients() const noexcept { return data_->num_clients(); }
  [[nodiscard]] std::size_t rounds_run() const noexcept { return rounds_run_; }

  [[nodiscard]] const data::FederatedDataset& dataset() const noexcept { return *data_; }

  /// Installs a per-round learning-rate schedule; overrides the spec's
  /// constant optimizer rate from the next round on.
  void set_lr_schedule(const LrSchedule& schedule) { schedule_ = schedule; }

  /// Enables FedAvgM-style server momentum: the applied update becomes
  /// v <- beta*v + aggregate. beta in [0, 1); 0 restores plain FedAvg.
  void set_server_momentum(double beta);

  /// The learning rate the next round will train with.
  [[nodiscard]] double current_learning_rate() const;

 private:
  const data::FederatedDataset* data_;
  std::unique_ptr<Model> model_;
  LocalTrainingSpec spec_;
  std::vector<sfl::util::Rng> client_rngs_;
  sfl::util::ThreadPool* pool_;
  std::size_t rounds_run_ = 0;
  std::optional<LrSchedule> schedule_;
  double server_momentum_ = 0.0;
  std::vector<double> momentum_buffer_;
};

}  // namespace sfl::fl
