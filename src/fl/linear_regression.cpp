#include "fl/linear_regression.h"

#include <algorithm>

#include "data/matrix.h"
#include "util/require.h"

namespace sfl::fl {

using sfl::util::require;

LinearRegression::LinearRegression(std::size_t feature_dim, double l2_penalty)
    : feature_dim_(feature_dim), l2_penalty_(l2_penalty), weights_(feature_dim, 0.0) {
  require(feature_dim > 0, "feature_dim must be > 0");
  require(l2_penalty >= 0.0, "l2_penalty must be >= 0");
}

std::unique_ptr<Model> LinearRegression::clone() const {
  return std::make_unique<LinearRegression>(*this);
}

std::size_t LinearRegression::parameter_count() const noexcept {
  return feature_dim_ + 1;
}

std::vector<double> LinearRegression::parameters() const {
  std::vector<double> out = weights_;
  out.push_back(bias_);
  return out;
}

void LinearRegression::set_parameters(std::span<const double> params) {
  require(params.size() == parameter_count(), "parameter size mismatch");
  std::copy(params.begin(), params.end() - 1, weights_.begin());
  bias_ = params.back();
}

double LinearRegression::predict_value(std::span<const double> features) const {
  require(features.size() == feature_dim_, "feature dimension mismatch");
  return data::dot(features, weights_) + bias_;
}

double LinearRegression::loss_and_gradient(const data::Dataset& dataset,
                                           std::span<const std::size_t> batch,
                                           std::span<double> grad_out) const {
  require(!dataset.is_classification(), "linear regression needs targets");
  require(dataset.feature_dim() == feature_dim_, "feature dimension mismatch");
  require(!batch.empty(), "batch must be non-empty");
  require(grad_out.size() == parameter_count(), "gradient size mismatch");

  std::fill(grad_out.begin(), grad_out.end(), 0.0);
  double total_loss = 0.0;
  const double inv_batch = 1.0 / static_cast<double>(batch.size());
  for (const std::size_t index : batch) {
    const auto x = dataset.example(index);
    const double residual = predict_value(x) - dataset.target(index);
    total_loss += 0.5 * residual * residual;
    const double delta = residual * inv_batch;
    for (std::size_t j = 0; j < feature_dim_; ++j) {
      grad_out[j] += delta * x[j];
    }
    grad_out[feature_dim_] += delta;
  }
  double reg_loss = 0.0;
  if (l2_penalty_ > 0.0) {
    for (std::size_t j = 0; j < feature_dim_; ++j) {
      grad_out[j] += l2_penalty_ * weights_[j];
      reg_loss += weights_[j] * weights_[j];
    }
    reg_loss *= 0.5 * l2_penalty_;
  }
  return total_loss * inv_batch + reg_loss;
}

double LinearRegression::loss(const data::Dataset& dataset,
                              std::span<const std::size_t> batch) const {
  require(!dataset.is_classification(), "linear regression needs targets");
  require(!batch.empty(), "batch must be non-empty");
  double total_loss = 0.0;
  for (const std::size_t index : batch) {
    const double residual = predict_value(dataset.example(index)) - dataset.target(index);
    total_loss += 0.5 * residual * residual;
  }
  double reg_loss = 0.0;
  if (l2_penalty_ > 0.0) {
    for (const double w : weights_) reg_loss += w * w;
    reg_loss *= 0.5 * l2_penalty_;
  }
  return total_loss / static_cast<double>(batch.size()) + reg_loss;
}

}  // namespace sfl::fl
