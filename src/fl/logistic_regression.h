// Multinomial (softmax) logistic regression with L2 regularization.
//
// Parameter layout: W row-major (num_classes x feature_dim), then bias
// (num_classes). The L2 term makes the local losses strongly convex, matching
// the assumptions typical convergence analyses in this paper class rely on.
#pragma once

#include "data/matrix.h"
#include "fl/model.h"

namespace sfl::fl {

class LogisticRegression final : public Model {
 public:
  /// Zero-initialized weights. l2_penalty >= 0 multiplies 0.5*||W||^2
  /// (biases are not regularized).
  LogisticRegression(std::size_t feature_dim, std::size_t num_classes,
                     double l2_penalty = 1e-4);

  [[nodiscard]] std::unique_ptr<Model> clone() const override;
  [[nodiscard]] std::size_t parameter_count() const noexcept override;
  [[nodiscard]] std::vector<double> parameters() const override;
  void set_parameters(std::span<const double> params) override;
  double loss_and_gradient(const data::Dataset& dataset,
                           std::span<const std::size_t> batch,
                           std::span<double> grad_out) const override;
  [[nodiscard]] double loss(const data::Dataset& dataset,
                            std::span<const std::size_t> batch) const override;
  [[nodiscard]] int predict_class(std::span<const double> features) const override;

  [[nodiscard]] std::size_t feature_dim() const noexcept { return feature_dim_; }
  [[nodiscard]] std::size_t num_classes() const noexcept { return num_classes_; }

  /// Class probabilities for one example (softmax of logits).
  [[nodiscard]] std::vector<double> probabilities(
      std::span<const double> features) const;

 private:
  std::size_t feature_dim_;
  std::size_t num_classes_;
  double l2_penalty_;
  data::Matrix weights_;       // num_classes x feature_dim
  std::vector<double> bias_;   // num_classes
};

/// Numerically stable in-place softmax (subtracts the max logit).
void softmax_inplace(std::span<double> logits);

}  // namespace sfl::fl
