#include "fl/federated_trainer.h"

#include <unordered_set>

#include "data/matrix.h"
#include "util/require.h"

namespace sfl::fl {

using sfl::util::require;

FederatedTrainer::FederatedTrainer(const data::FederatedDataset& data,
                                   std::unique_ptr<Model> model,
                                   LocalTrainingSpec spec, std::uint64_t seed,
                                   sfl::util::ThreadPool* pool)
    : data_(&data), model_(std::move(model)), spec_(spec), pool_(pool) {
  require(model_ != nullptr, "trainer needs a model");
  sfl::util::Rng root(seed);
  client_rngs_.reserve(data_->num_clients());
  for (std::size_t i = 0; i < data_->num_clients(); ++i) {
    client_rngs_.push_back(root.split());
  }
}

RoundSummary FederatedTrainer::run_round(std::span<const std::size_t> participants) {
  return run_round_detailed(participants).summary;
}

DetailedRound FederatedTrainer::run_round_detailed(
    std::span<const std::size_t> participants) {
  DetailedRound round;
  if (participants.empty()) return round;

  std::unordered_set<std::size_t> unique(participants.begin(), participants.end());
  require(unique.size() == participants.size(), "duplicate participant ids");
  for (const std::size_t client : participants) {
    require(client < data_->num_clients(), "participant id out of range");
  }

  LocalTrainingSpec round_spec = spec_;
  if (schedule_.has_value()) {
    round_spec.optimizer.learning_rate = schedule_->rate(rounds_run_);
  }

  round.updates.resize(participants.size());
  const auto train_one = [&](std::size_t slot) {
    const std::size_t client = participants[slot];
    round.updates[slot] = run_local_training(*model_, data_->shard(client),
                                             round_spec, client_rngs_[client]);
  };
  if (pool_ != nullptr && participants.size() > 1) {
    pool_->parallel_for(participants.size(), train_one);
  } else {
    for (std::size_t slot = 0; slot < participants.size(); ++slot) train_one(slot);
  }

  round.aggregate = aggregate_fedavg(round.updates);
  if (server_momentum_ > 0.0) {
    if (momentum_buffer_.size() != round.aggregate.size()) {
      momentum_buffer_.assign(round.aggregate.size(), 0.0);
    }
    for (std::size_t i = 0; i < round.aggregate.size(); ++i) {
      momentum_buffer_[i] =
          server_momentum_ * momentum_buffer_[i] + round.aggregate[i];
      round.aggregate[i] = momentum_buffer_[i];
    }
  }
  std::vector<double> params = model_->parameters();
  apply_server_update(params, round.aggregate);
  model_->set_parameters(params);

  round.summary.participants = participants.size();
  for (const auto& update : round.updates) {
    round.summary.mean_initial_loss += update.initial_loss;
    round.summary.mean_final_loss += update.final_loss;
  }
  const auto n = static_cast<double>(participants.size());
  round.summary.mean_initial_loss /= n;
  round.summary.mean_final_loss /= n;
  round.summary.update_norm = data::l2_norm(round.aggregate);
  ++rounds_run_;
  return round;
}

void FederatedTrainer::set_server_momentum(double beta) {
  require(beta >= 0.0 && beta < 1.0, "server momentum must be in [0, 1)");
  server_momentum_ = beta;
  if (beta == 0.0) momentum_buffer_.clear();
}

double FederatedTrainer::current_learning_rate() const {
  return schedule_.has_value() ? schedule_->rate(rounds_run_)
                               : spec_.optimizer.learning_rate;
}

EvalResult FederatedTrainer::evaluate_test() const {
  return evaluate(*model_, data_->test_set());
}

EvalResult FederatedTrainer::evaluate_shard(std::size_t client) const {
  return evaluate(*model_, data_->shard(client));
}

}  // namespace sfl::fl
