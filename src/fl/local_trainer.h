// Local client training: T minibatch steps from the current global model.
#pragma once

#include <vector>

#include "data/dataset.h"
#include "fl/model.h"
#include "fl/optimizer.h"
#include "util/rng.h"

namespace sfl::fl {

struct LocalTrainingSpec {
  std::size_t local_steps = 5;   ///< T in the paper class
  std::size_t batch_size = 32;   ///< minibatch size (capped at shard size)
  OptimizerSpec optimizer{};
  /// FedProx proximal coefficient mu >= 0: adds mu*(w - w_global) to every
  /// local gradient, damping client drift under non-IID shards. 0 = plain
  /// FedAvg local SGD.
  double proximal_mu = 0.0;
  /// Per-example gradient-norm clip; 0 disables. Applied to the minibatch
  /// gradient (including the proximal term) before the optimizer step.
  double gradient_clip_norm = 0.0;
};

/// What a participating client sends back to the server.
struct LocalUpdate {
  std::vector<double> delta;  ///< w_local - w_global
  double initial_loss = 0.0;  ///< minibatch loss at the first local step
  double final_loss = 0.0;    ///< minibatch loss at the last local step
  std::size_t examples = 0;   ///< client shard size (aggregation weight)
};

/// Clones `global_model`, runs `spec.local_steps` minibatch-SGD steps on
/// `shard` with a fresh optimizer, and returns the parameter delta.
/// The shard must be non-empty; `rng` drives minibatch sampling.
[[nodiscard]] LocalUpdate run_local_training(const Model& global_model,
                                             const data::Dataset& shard,
                                             const LocalTrainingSpec& spec,
                                             sfl::util::Rng& rng);

}  // namespace sfl::fl
