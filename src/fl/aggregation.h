// Server-side aggregation of local updates (FedAvg and variants).
#pragma once

#include <span>
#include <vector>

#include "fl/local_trainer.h"

namespace sfl::fl {

/// Weighted average of `updates[i].delta` with weights proportional to
/// `weights[i]` (all >= 0, sum > 0; sizes must match). The classic FedAvg
/// choice is weights[i] = examples held by client i.
[[nodiscard]] std::vector<double> aggregate_weighted_deltas(
    const std::vector<LocalUpdate>& updates, const std::vector<double>& weights);

/// Convenience: weights taken from each update's `examples` field.
[[nodiscard]] std::vector<double> aggregate_fedavg(
    const std::vector<LocalUpdate>& updates);

/// params += server_learning_rate * update (sizes must match).
void apply_server_update(std::span<double> params, std::span<const double> update,
                         double server_learning_rate = 1.0);

}  // namespace sfl::fl
