#include "fl/logistic_regression.h"

#include <algorithm>
#include <cmath>

#include "util/require.h"

namespace sfl::fl {

using sfl::util::require;

void softmax_inplace(std::span<double> logits) {
  require(!logits.empty(), "softmax of empty logits");
  const double max_logit = *std::max_element(logits.begin(), logits.end());
  double sum = 0.0;
  for (auto& z : logits) {
    z = std::exp(z - max_logit);
    sum += z;
  }
  for (auto& z : logits) z /= sum;
}

LogisticRegression::LogisticRegression(std::size_t feature_dim,
                                       std::size_t num_classes, double l2_penalty)
    : feature_dim_(feature_dim),
      num_classes_(num_classes),
      l2_penalty_(l2_penalty),
      weights_(num_classes, feature_dim),
      bias_(num_classes, 0.0) {
  require(feature_dim > 0, "feature_dim must be > 0");
  require(num_classes >= 2, "num_classes must be >= 2");
  require(l2_penalty >= 0.0, "l2_penalty must be >= 0");
}

std::unique_ptr<Model> LogisticRegression::clone() const {
  return std::make_unique<LogisticRegression>(*this);
}

std::size_t LogisticRegression::parameter_count() const noexcept {
  return num_classes_ * feature_dim_ + num_classes_;
}

std::vector<double> LogisticRegression::parameters() const {
  std::vector<double> out;
  out.reserve(parameter_count());
  out.assign(weights_.data().begin(), weights_.data().end());
  out.insert(out.end(), bias_.begin(), bias_.end());
  return out;
}

void LogisticRegression::set_parameters(std::span<const double> params) {
  require(params.size() == parameter_count(), "parameter size mismatch");
  std::copy(params.begin(), params.begin() + static_cast<std::ptrdiff_t>(weights_.size()),
            weights_.data().begin());
  std::copy(params.begin() + static_cast<std::ptrdiff_t>(weights_.size()), params.end(),
            bias_.begin());
}

std::vector<double> LogisticRegression::probabilities(
    std::span<const double> features) const {
  require(features.size() == feature_dim_, "feature dimension mismatch");
  std::vector<double> logits = data::matvec(weights_, features);
  for (std::size_t k = 0; k < num_classes_; ++k) logits[k] += bias_[k];
  softmax_inplace(logits);
  return logits;
}

double LogisticRegression::loss_and_gradient(const data::Dataset& dataset,
                                             std::span<const std::size_t> batch,
                                             std::span<double> grad_out) const {
  require(dataset.is_classification(), "logistic regression needs labels");
  require(dataset.num_classes() == num_classes_, "class count mismatch");
  require(dataset.feature_dim() == feature_dim_, "feature dimension mismatch");
  require(!batch.empty(), "batch must be non-empty");
  require(grad_out.size() == parameter_count(), "gradient size mismatch");

  std::fill(grad_out.begin(), grad_out.end(), 0.0);
  auto grad_w = grad_out.subspan(0, weights_.size());
  auto grad_b = grad_out.subspan(weights_.size());

  double total_loss = 0.0;
  const double inv_batch = 1.0 / static_cast<double>(batch.size());
  for (const std::size_t index : batch) {
    const auto x = dataset.example(index);
    const auto label = static_cast<std::size_t>(dataset.label(index));
    std::vector<double> probs = probabilities(x);
    total_loss += -std::log(std::max(probs[label], 1e-15));
    // dL/dz_k = p_k - 1{k == y}; accumulate dL/dW = dL/dz x^T.
    probs[label] -= 1.0;
    for (std::size_t k = 0; k < num_classes_; ++k) {
      const double delta = probs[k] * inv_batch;
      if (delta == 0.0) continue;
      auto grad_row = grad_w.subspan(k * feature_dim_, feature_dim_);
      for (std::size_t j = 0; j < feature_dim_; ++j) {
        grad_row[j] += delta * x[j];
      }
      grad_b[k] += delta;
    }
  }

  double reg_loss = 0.0;
  if (l2_penalty_ > 0.0) {
    const auto w = weights_.data();
    for (std::size_t i = 0; i < w.size(); ++i) {
      grad_w[i] += l2_penalty_ * w[i];
      reg_loss += w[i] * w[i];
    }
    reg_loss *= 0.5 * l2_penalty_;
  }
  return total_loss * inv_batch + reg_loss;
}

double LogisticRegression::loss(const data::Dataset& dataset,
                                std::span<const std::size_t> batch) const {
  require(dataset.is_classification(), "logistic regression needs labels");
  require(dataset.feature_dim() == feature_dim_, "feature dimension mismatch");
  require(!batch.empty(), "batch must be non-empty");
  double total_loss = 0.0;
  for (const std::size_t index : batch) {
    const auto probs = probabilities(dataset.example(index));
    const auto label = static_cast<std::size_t>(dataset.label(index));
    total_loss += -std::log(std::max(probs[label], 1e-15));
  }
  double reg_loss = 0.0;
  if (l2_penalty_ > 0.0) {
    for (const double w : weights_.data()) reg_loss += w * w;
    reg_loss *= 0.5 * l2_penalty_;
  }
  return total_loss / static_cast<double>(batch.size()) + reg_loss;
}

int LogisticRegression::predict_class(std::span<const double> features) const {
  const auto probs = probabilities(features);
  return static_cast<int>(
      std::distance(probs.begin(), std::max_element(probs.begin(), probs.end())));
}

}  // namespace sfl::fl
