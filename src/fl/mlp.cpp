#include "fl/mlp.h"

#include <algorithm>
#include <cmath>

#include "fl/logistic_regression.h"  // softmax_inplace
#include "util/require.h"

namespace sfl::fl {

using sfl::util::require;

Mlp::Mlp(std::size_t feature_dim, std::size_t hidden_dim, std::size_t num_classes,
         sfl::util::Rng& rng, double l2_penalty)
    : feature_dim_(feature_dim),
      hidden_dim_(hidden_dim),
      num_classes_(num_classes),
      l2_penalty_(l2_penalty),
      w1_(data::Matrix::random_normal(hidden_dim, feature_dim,
                                      std::sqrt(2.0 / static_cast<double>(feature_dim)),
                                      rng)),
      b1_(hidden_dim, 0.0),
      w2_(data::Matrix::random_normal(num_classes, hidden_dim,
                                      std::sqrt(2.0 / static_cast<double>(hidden_dim)),
                                      rng)),
      b2_(num_classes, 0.0) {
  require(feature_dim > 0 && hidden_dim > 0, "dimensions must be > 0");
  require(num_classes >= 2, "num_classes must be >= 2");
  require(l2_penalty >= 0.0, "l2_penalty must be >= 0");
}

std::unique_ptr<Model> Mlp::clone() const { return std::make_unique<Mlp>(*this); }

std::size_t Mlp::parameter_count() const noexcept {
  return w1_.size() + b1_.size() + w2_.size() + b2_.size();
}

std::vector<double> Mlp::parameters() const {
  std::vector<double> out;
  out.reserve(parameter_count());
  out.assign(w1_.data().begin(), w1_.data().end());
  out.insert(out.end(), b1_.begin(), b1_.end());
  out.insert(out.end(), w2_.data().begin(), w2_.data().end());
  out.insert(out.end(), b2_.begin(), b2_.end());
  return out;
}

void Mlp::set_parameters(std::span<const double> params) {
  require(params.size() == parameter_count(), "parameter size mismatch");
  auto cursor = params.begin();
  std::copy(cursor, cursor + static_cast<std::ptrdiff_t>(w1_.size()),
            w1_.data().begin());
  cursor += static_cast<std::ptrdiff_t>(w1_.size());
  std::copy(cursor, cursor + static_cast<std::ptrdiff_t>(b1_.size()), b1_.begin());
  cursor += static_cast<std::ptrdiff_t>(b1_.size());
  std::copy(cursor, cursor + static_cast<std::ptrdiff_t>(w2_.size()),
            w2_.data().begin());
  cursor += static_cast<std::ptrdiff_t>(w2_.size());
  std::copy(cursor, params.end(), b2_.begin());
}

std::vector<double> Mlp::forward(std::span<const double> features,
                                 std::vector<double>& hidden) const {
  require(features.size() == feature_dim_, "feature dimension mismatch");
  hidden = data::matvec(w1_, features);
  for (std::size_t h = 0; h < hidden_dim_; ++h) {
    hidden[h] = std::max(hidden[h] + b1_[h], 0.0);  // ReLU
  }
  std::vector<double> logits = data::matvec(w2_, hidden);
  for (std::size_t k = 0; k < num_classes_; ++k) logits[k] += b2_[k];
  softmax_inplace(logits);
  return logits;
}

double Mlp::loss_and_gradient(const data::Dataset& dataset,
                              std::span<const std::size_t> batch,
                              std::span<double> grad_out) const {
  require(dataset.is_classification(), "MLP needs labels");
  require(dataset.num_classes() == num_classes_, "class count mismatch");
  require(!batch.empty(), "batch must be non-empty");
  require(grad_out.size() == parameter_count(), "gradient size mismatch");

  std::fill(grad_out.begin(), grad_out.end(), 0.0);
  auto g_w1 = grad_out.subspan(0, w1_.size());
  auto g_b1 = grad_out.subspan(w1_.size(), b1_.size());
  auto g_w2 = grad_out.subspan(w1_.size() + b1_.size(), w2_.size());
  auto g_b2 = grad_out.subspan(w1_.size() + b1_.size() + w2_.size());

  double total_loss = 0.0;
  const double inv_batch = 1.0 / static_cast<double>(batch.size());
  std::vector<double> hidden;
  std::vector<double> hidden_grad(hidden_dim_);
  for (const std::size_t index : batch) {
    const auto x = dataset.example(index);
    const auto label = static_cast<std::size_t>(dataset.label(index));
    std::vector<double> probs = forward(x, hidden);
    total_loss += -std::log(std::max(probs[label], 1e-15));
    probs[label] -= 1.0;  // dL/dlogits

    // Output layer gradients and backprop into hidden activations.
    std::fill(hidden_grad.begin(), hidden_grad.end(), 0.0);
    for (std::size_t k = 0; k < num_classes_; ++k) {
      const double delta = probs[k] * inv_batch;
      auto g_row = g_w2.subspan(k * hidden_dim_, hidden_dim_);
      const auto w_row = w2_.row(k);
      for (std::size_t h = 0; h < hidden_dim_; ++h) {
        g_row[h] += delta * hidden[h];
        hidden_grad[h] += probs[k] * w_row[h];
      }
      g_b2[k] += delta;
    }

    // Hidden layer (ReLU mask: hidden[h] > 0).
    for (std::size_t h = 0; h < hidden_dim_; ++h) {
      if (hidden[h] <= 0.0) continue;
      const double delta = hidden_grad[h] * inv_batch;
      if (delta == 0.0) continue;
      auto g_row = g_w1.subspan(h * feature_dim_, feature_dim_);
      for (std::size_t j = 0; j < feature_dim_; ++j) {
        g_row[j] += delta * x[j];
      }
      g_b1[h] += delta;
    }
  }

  double reg_loss = 0.0;
  if (l2_penalty_ > 0.0) {
    const auto w1 = w1_.data();
    for (std::size_t i = 0; i < w1.size(); ++i) {
      g_w1[i] += l2_penalty_ * w1[i];
      reg_loss += w1[i] * w1[i];
    }
    const auto w2 = w2_.data();
    for (std::size_t i = 0; i < w2.size(); ++i) {
      g_w2[i] += l2_penalty_ * w2[i];
      reg_loss += w2[i] * w2[i];
    }
    reg_loss *= 0.5 * l2_penalty_;
  }
  return total_loss * inv_batch + reg_loss;
}

double Mlp::loss(const data::Dataset& dataset,
                 std::span<const std::size_t> batch) const {
  require(dataset.is_classification(), "MLP needs labels");
  require(!batch.empty(), "batch must be non-empty");
  double total_loss = 0.0;
  std::vector<double> hidden;
  for (const std::size_t index : batch) {
    const auto probs = forward(dataset.example(index), hidden);
    const auto label = static_cast<std::size_t>(dataset.label(index));
    total_loss += -std::log(std::max(probs[label], 1e-15));
  }
  double reg_loss = 0.0;
  if (l2_penalty_ > 0.0) {
    for (const double w : w1_.data()) reg_loss += w * w;
    for (const double w : w2_.data()) reg_loss += w * w;
    reg_loss *= 0.5 * l2_penalty_;
  }
  return total_loss / static_cast<double>(batch.size()) + reg_loss;
}

int Mlp::predict_class(std::span<const double> features) const {
  std::vector<double> hidden;
  const auto probs = forward(features, hidden);
  return static_cast<int>(
      std::distance(probs.begin(), std::max_element(probs.begin(), probs.end())));
}

}  // namespace sfl::fl
