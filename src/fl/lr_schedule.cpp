#include "fl/lr_schedule.h"

#include <cmath>
#include <numbers>

#include "util/require.h"

namespace sfl::fl {

using sfl::util::require;

LrSchedule::LrSchedule(const LrScheduleSpec& spec) : spec_(spec) {
  require(spec.base_rate > 0.0, "base learning rate must be > 0");
  switch (spec.kind) {
    case LrScheduleKind::kConstant:
      break;
    case LrScheduleKind::kInverseTime:
      require(spec.tau > 0.0, "inverse-time tau must be > 0");
      break;
    case LrScheduleKind::kStep:
      require(spec.step_factor > 0.0 && spec.step_factor <= 1.0,
              "step factor must be in (0, 1]");
      require(spec.step_every > 0, "step period must be > 0");
      break;
    case LrScheduleKind::kCosine:
      require(spec.horizon > 0, "cosine horizon must be > 0");
      require(spec.floor_rate >= 0.0 && spec.floor_rate <= spec.base_rate,
              "cosine floor must be in [0, base]");
      break;
  }
}

double LrSchedule::rate(std::size_t round) const {
  switch (spec_.kind) {
    case LrScheduleKind::kConstant:
      return spec_.base_rate;
    case LrScheduleKind::kInverseTime:
      return spec_.base_rate / (1.0 + static_cast<double>(round) / spec_.tau);
    case LrScheduleKind::kStep: {
      const auto steps = round / spec_.step_every;
      return spec_.base_rate * std::pow(spec_.step_factor,
                                        static_cast<double>(steps));
    }
    case LrScheduleKind::kCosine: {
      const double progress = std::min(
          static_cast<double>(round) / static_cast<double>(spec_.horizon), 1.0);
      const double cosine = 0.5 * (1.0 + std::cos(std::numbers::pi * progress));
      const double rate =
          spec_.floor_rate + (spec_.base_rate - spec_.floor_rate) * cosine;
      // Keep strictly positive even at the floor.
      return rate > 0.0 ? rate : 1e-12;
    }
  }
  return spec_.base_rate;
}

}  // namespace sfl::fl
