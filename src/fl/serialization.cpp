#include "fl/serialization.h"

#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/require.h"

namespace sfl::fl {

using sfl::util::require;

namespace {
constexpr const char* kMagic = "sfl-model-v1";
}  // namespace

void save_parameters(const Model& model, std::ostream& out) {
  const std::vector<double> params = model.parameters();
  out << kMagic << '\n' << params.size() << '\n';
  out << std::setprecision(17);
  for (const double p : params) {
    out << p << '\n';
  }
  require(static_cast<bool>(out), "failed writing model parameters");
}

void load_parameters(Model& model, std::istream& in) {
  std::string magic;
  require(static_cast<bool>(in >> magic), "missing checkpoint header");
  require(magic == kMagic, "not an sfl model checkpoint");
  std::size_t count = 0;
  require(static_cast<bool>(in >> count), "missing parameter count");
  require(count == model.parameter_count(),
          "checkpoint parameter count does not match the model");
  std::vector<double> params(count);
  for (std::size_t i = 0; i < count; ++i) {
    require(static_cast<bool>(in >> params[i]),
            "truncated checkpoint: fewer parameters than declared");
  }
  model.set_parameters(params);
}

void save_parameters_to_file(const Model& model, const std::string& path) {
  std::ofstream out(path);
  require(out.is_open(), "cannot open checkpoint file for writing: " + path);
  save_parameters(model, out);
}

void load_parameters_from_file(Model& model, const std::string& path) {
  std::ifstream in(path);
  require(in.is_open(), "cannot open checkpoint file for reading: " + path);
  load_parameters(model, in);
}

}  // namespace sfl::fl
