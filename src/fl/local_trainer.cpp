#include "fl/local_trainer.h"

#include <algorithm>

#include "data/matrix.h"
#include "util/require.h"

namespace sfl::fl {

using sfl::util::require;

LocalUpdate run_local_training(const Model& global_model, const data::Dataset& shard,
                               const LocalTrainingSpec& spec, sfl::util::Rng& rng) {
  require(!shard.empty(), "cannot train on an empty shard");
  require(spec.local_steps > 0, "local_steps must be > 0");
  require(spec.batch_size > 0, "batch_size must be > 0");
  require(spec.proximal_mu >= 0.0, "proximal_mu must be >= 0");
  require(spec.gradient_clip_norm >= 0.0, "gradient clip norm must be >= 0");

  const std::unique_ptr<Model> local = global_model.clone();
  const std::unique_ptr<Optimizer> optimizer = make_optimizer(spec.optimizer);

  const std::vector<double> initial_params = local->parameters();
  std::vector<double> params = initial_params;
  std::vector<double> grad(params.size(), 0.0);

  const std::size_t batch_size = std::min(spec.batch_size, shard.size());
  std::vector<std::size_t> batch(batch_size);

  LocalUpdate update;
  update.examples = shard.size();
  for (std::size_t step = 0; step < spec.local_steps; ++step) {
    for (auto& index : batch) {
      index = rng.uniform_index(shard.size());
    }
    local->set_parameters(params);
    const double loss = local->loss_and_gradient(shard, batch, grad);
    if (step == 0) update.initial_loss = loss;
    update.final_loss = loss;
    if (spec.proximal_mu > 0.0) {
      // FedProx: pull toward the round's global parameters.
      for (std::size_t i = 0; i < grad.size(); ++i) {
        grad[i] += spec.proximal_mu * (params[i] - initial_params[i]);
      }
    }
    if (spec.gradient_clip_norm > 0.0) {
      const double norm = data::l2_norm(grad);
      if (norm > spec.gradient_clip_norm) {
        const double scale = spec.gradient_clip_norm / norm;
        for (auto& g : grad) g *= scale;
      }
    }
    optimizer->step(params, grad);
  }

  update.delta.resize(params.size());
  for (std::size_t i = 0; i < params.size(); ++i) {
    update.delta[i] = params[i] - initial_params[i];
  }
  return update;
}

}  // namespace sfl::fl
