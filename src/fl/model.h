// Model interface for the FL substrate.
//
// Models expose a flat parameter vector so that federated aggregation,
// optimizers, and serialization are model-agnostic. Implementations:
// multinomial logistic regression, a one-hidden-layer MLP, and linear
// regression (closed-form checkable in tests).
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "data/dataset.h"

namespace sfl::fl {

/// Loss/accuracy pair from evaluating a model on a dataset. For regression
/// datasets `accuracy` is 0 and `has_accuracy` is false.
struct EvalResult {
  double loss = 0.0;
  double accuracy = 0.0;
  bool has_accuracy = false;
};

class Model {
 public:
  virtual ~Model() = default;

  /// Deep copy, preserving current parameters.
  [[nodiscard]] virtual std::unique_ptr<Model> clone() const = 0;

  [[nodiscard]] virtual std::size_t parameter_count() const noexcept = 0;

  /// Flat parameter vector (layout is implementation-defined but stable).
  [[nodiscard]] virtual std::vector<double> parameters() const = 0;

  /// Overwrites all parameters; `params.size()` must equal parameter_count().
  virtual void set_parameters(std::span<const double> params) = 0;

  /// Mean loss over `batch` (indices into `dataset`) and its gradient with
  /// respect to the parameters. `grad_out.size()` must equal
  /// parameter_count(); it is overwritten. Returns the mean loss.
  virtual double loss_and_gradient(const data::Dataset& dataset,
                                   std::span<const std::size_t> batch,
                                   std::span<double> grad_out) const = 0;

  /// Mean loss over `batch` (forward pass only).
  [[nodiscard]] virtual double loss(const data::Dataset& dataset,
                                    std::span<const std::size_t> batch) const = 0;

  /// Predicted class for one feature vector (classification models only;
  /// throws std::logic_error otherwise).
  [[nodiscard]] virtual int predict_class(std::span<const double> features) const;

  /// Predicted value for one feature vector (regression models only;
  /// throws std::logic_error otherwise).
  [[nodiscard]] virtual double predict_value(std::span<const double> features) const;
};

/// Mean loss (and accuracy, when classification) over an entire dataset.
[[nodiscard]] EvalResult evaluate(const Model& model, const data::Dataset& dataset);

/// Convenience: batch spanning the whole dataset, [0, n).
[[nodiscard]] std::vector<std::size_t> full_batch(const data::Dataset& dataset);

}  // namespace sfl::fl
