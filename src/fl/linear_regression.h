// Linear regression with mean-squared-error loss.
//
// Used mainly by tests: the loss is quadratic, so SGD behaviour and the
// optimum are checkable against closed forms. Parameter layout: weights
// (feature_dim), then bias.
#pragma once

#include "fl/model.h"

namespace sfl::fl {

class LinearRegression final : public Model {
 public:
  explicit LinearRegression(std::size_t feature_dim, double l2_penalty = 0.0);

  [[nodiscard]] std::unique_ptr<Model> clone() const override;
  [[nodiscard]] std::size_t parameter_count() const noexcept override;
  [[nodiscard]] std::vector<double> parameters() const override;
  void set_parameters(std::span<const double> params) override;
  double loss_and_gradient(const data::Dataset& dataset,
                           std::span<const std::size_t> batch,
                           std::span<double> grad_out) const override;
  [[nodiscard]] double loss(const data::Dataset& dataset,
                            std::span<const std::size_t> batch) const override;
  [[nodiscard]] double predict_value(std::span<const double> features) const override;

 private:
  std::size_t feature_dim_;
  double l2_penalty_;
  std::vector<double> weights_;
  double bias_ = 0.0;
};

}  // namespace sfl::fl
