#include "fl/model.h"

#include <numeric>
#include <stdexcept>

namespace sfl::fl {

int Model::predict_class(std::span<const double> /*features*/) const {
  throw std::logic_error("predict_class is not supported by this model");
}

double Model::predict_value(std::span<const double> /*features*/) const {
  throw std::logic_error("predict_value is not supported by this model");
}

EvalResult evaluate(const Model& model, const data::Dataset& dataset) {
  EvalResult result;
  const auto batch = full_batch(dataset);
  result.loss = model.loss(dataset, batch);
  if (dataset.is_classification()) {
    std::size_t correct = 0;
    for (std::size_t i = 0; i < dataset.size(); ++i) {
      if (model.predict_class(dataset.example(i)) == dataset.label(i)) {
        ++correct;
      }
    }
    result.accuracy =
        dataset.empty() ? 0.0
                        : static_cast<double>(correct) / static_cast<double>(dataset.size());
    result.has_accuracy = true;
  }
  return result;
}

std::vector<std::size_t> full_batch(const data::Dataset& dataset) {
  std::vector<std::size_t> batch(dataset.size());
  std::iota(batch.begin(), batch.end(), std::size_t{0});
  return batch;
}

}  // namespace sfl::fl
