#include "data/dataset.h"

#include <algorithm>
#include <numeric>

#include "util/require.h"

namespace sfl::data {

using sfl::util::checked_index;
using sfl::util::require;

Dataset::Dataset(Matrix features, std::vector<int> labels, std::size_t num_classes)
    : features_(std::move(features)),
      labels_(std::move(labels)),
      num_classes_(num_classes) {
  require(num_classes_ > 0, "classification dataset needs num_classes > 0");
  require(labels_.size() == features_.rows(),
          "label count must match feature rows");
  for (const int label : labels_) {
    require(label >= 0 && static_cast<std::size_t>(label) < num_classes_,
            "label out of range");
  }
}

Dataset::Dataset(Matrix features, std::vector<double> targets)
    : features_(std::move(features)), targets_(std::move(targets)) {
  require(targets_.size() == features_.rows(),
          "target count must match feature rows");
}

std::span<const double> Dataset::example(std::size_t i) const {
  return features_.row(checked_index(i, size(), "dataset example"));
}

int Dataset::label(std::size_t i) const {
  require(is_classification(), "label() on a regression dataset");
  return labels_[checked_index(i, size(), "dataset label")];
}

double Dataset::target(std::size_t i) const {
  require(!is_classification(), "target() on a classification dataset");
  return targets_[checked_index(i, size(), "dataset target")];
}

Dataset Dataset::subset(std::span<const std::size_t> indices) const {
  Matrix features(indices.size(), feature_dim());
  for (std::size_t row = 0; row < indices.size(); ++row) {
    const std::size_t src = checked_index(indices[row], size(), "subset index");
    const auto source_row = features_.row(src);
    std::copy(source_row.begin(), source_row.end(), features.row(row).begin());
  }
  if (is_classification()) {
    std::vector<int> labels(indices.size());
    for (std::size_t row = 0; row < indices.size(); ++row) {
      labels[row] = labels_[indices[row]];
    }
    return Dataset(std::move(features), std::move(labels), num_classes_);
  }
  std::vector<double> targets(indices.size());
  for (std::size_t row = 0; row < indices.size(); ++row) {
    targets[row] = targets_[indices[row]];
  }
  return Dataset(std::move(features), std::move(targets));
}

std::vector<std::size_t> Dataset::class_histogram() const {
  require(is_classification(), "class_histogram on a regression dataset");
  std::vector<std::size_t> counts(num_classes_, 0);
  for (const int label : labels_) {
    ++counts[static_cast<std::size_t>(label)];
  }
  return counts;
}

std::pair<Dataset, Dataset> Dataset::split(double first_fraction,
                                           sfl::util::Rng& rng) const {
  require(first_fraction > 0.0 && first_fraction < 1.0,
          "split fraction must be in (0, 1)");
  require(size() >= 2, "cannot split a dataset with fewer than two examples");
  std::vector<std::size_t> order(size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  rng.shuffle(order);
  auto first_count =
      static_cast<std::size_t>(first_fraction * static_cast<double>(size()));
  first_count = std::clamp<std::size_t>(first_count, 1, size() - 1);
  const std::span<const std::size_t> all(order);
  return {subset(all.subspan(0, first_count)), subset(all.subspan(first_count))};
}

void Dataset::set_label(std::size_t i, int label) {
  require(is_classification(), "set_label on a regression dataset");
  require(label >= 0 && static_cast<std::size_t>(label) < num_classes_,
          "label out of range");
  labels_[checked_index(i, size(), "dataset label")] = label;
}

}  // namespace sfl::data
