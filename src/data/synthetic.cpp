#include "data/synthetic.h"

#include <cmath>

#include "util/require.h"

namespace sfl::data {

using sfl::util::require;

Dataset make_gaussian_mixture(const GaussianMixtureSpec& spec, sfl::util::Rng& rng) {
  require(spec.num_examples > 0, "mixture needs at least one example");
  require(spec.num_classes >= 2, "mixture needs at least two classes");
  require(spec.feature_dim > 0, "mixture needs a positive feature dimension");
  require(spec.within_class_stddev > 0.0, "within-class stddev must be > 0");
  require(spec.class_weights.empty() ||
              spec.class_weights.size() == spec.num_classes,
          "class_weights must be empty or one per class");

  // Draw class means on a sphere of radius class_separation * sqrt(dim)/2 so
  // pairwise distances stay O(class_separation) as dimension grows.
  std::vector<std::vector<double>> means(spec.num_classes);
  const double radius =
      spec.class_separation * std::sqrt(static_cast<double>(spec.feature_dim)) / 2.0;
  for (auto& mean : means) {
    mean.resize(spec.feature_dim);
    double norm = 0.0;
    for (auto& m : mean) {
      m = rng.normal();
      norm += m * m;
    }
    norm = std::sqrt(norm);
    if (norm <= 0.0) norm = 1.0;
    for (auto& m : mean) m *= radius / norm;
  }

  std::vector<double> weights = spec.class_weights;
  if (weights.empty()) {
    weights.assign(spec.num_classes, 1.0);
  }

  Matrix features(spec.num_examples, spec.feature_dim);
  std::vector<int> labels(spec.num_examples);
  for (std::size_t i = 0; i < spec.num_examples; ++i) {
    const std::size_t cls = rng.categorical(weights);
    labels[i] = static_cast<int>(cls);
    auto row = features.row(i);
    for (std::size_t j = 0; j < spec.feature_dim; ++j) {
      row[j] = means[cls][j] + rng.normal(0.0, spec.within_class_stddev);
    }
  }
  return Dataset(std::move(features), std::move(labels), spec.num_classes);
}

Dataset make_two_blobs(std::size_t num_examples, double separation,
                       sfl::util::Rng& rng) {
  GaussianMixtureSpec spec;
  spec.num_examples = num_examples;
  spec.num_classes = 2;
  spec.feature_dim = 2;
  spec.class_separation = separation;
  return make_gaussian_mixture(spec, rng);
}

LinearRegressionData make_linear_regression(std::size_t num_examples,
                                            std::size_t feature_dim,
                                            double noise_stddev,
                                            sfl::util::Rng& rng) {
  require(num_examples > 0, "regression data needs at least one example");
  require(feature_dim > 0, "regression data needs a positive dimension");
  require(noise_stddev >= 0.0, "noise stddev must be >= 0");

  LinearRegressionData out;
  out.true_weights.resize(feature_dim);
  for (auto& w : out.true_weights) w = rng.normal();
  out.true_bias = rng.normal();

  Matrix features(num_examples, feature_dim);
  std::vector<double> targets(num_examples);
  for (std::size_t i = 0; i < num_examples; ++i) {
    auto row = features.row(i);
    double y = out.true_bias;
    for (std::size_t j = 0; j < feature_dim; ++j) {
      row[j] = rng.normal();
      y += out.true_weights[j] * row[j];
    }
    targets[i] = y + rng.normal(0.0, noise_stddev);
  }
  out.dataset = Dataset(std::move(features), std::move(targets));
  return out;
}

std::size_t apply_label_noise(Dataset& dataset, double flip_probability,
                              sfl::util::Rng& rng) {
  require(dataset.is_classification(), "label noise applies to classification");
  require(flip_probability >= 0.0 && flip_probability <= 1.0,
          "flip probability must be in [0, 1]");
  const auto k = static_cast<std::int64_t>(dataset.num_classes());
  if (k < 2 || flip_probability == 0.0) return 0;
  std::size_t flipped = 0;
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    if (!rng.bernoulli(flip_probability)) continue;
    const int old_label = dataset.label(i);
    // Uniform over the other k-1 classes.
    auto candidate = static_cast<int>(rng.uniform_int(0, k - 2));
    if (candidate >= old_label) ++candidate;
    dataset.set_label(i, candidate);
    ++flipped;
  }
  return flipped;
}

}  // namespace sfl::data
