// Synthetic dataset generators.
//
// The paper class evaluates on CIFAR-10/MNIST; this repo substitutes a
// 10-class Gaussian mixture in R^d (see DESIGN.md §4). The generator places
// class means on a scaled random sphere and adds isotropic within-class
// noise; `class_separation` controls task difficulty so accuracy curves have
// headroom to show mechanism-induced differences.
#pragma once

#include <cstddef>

#include "data/dataset.h"
#include "util/rng.h"

namespace sfl::data {

struct GaussianMixtureSpec {
  std::size_t num_examples = 1000;
  std::size_t num_classes = 10;
  std::size_t feature_dim = 32;
  double class_separation = 2.5;  ///< distance scale between class means
  double within_class_stddev = 1.0;
  /// Relative class frequencies; empty = balanced.
  std::vector<double> class_weights{};
};

/// Samples a classification dataset from the mixture. Class means are drawn
/// once (from `rng`) and examples are sampled around them.
[[nodiscard]] Dataset make_gaussian_mixture(const GaussianMixtureSpec& spec,
                                            sfl::util::Rng& rng);

/// Two well-separated 2-class blobs; handy for fast unit tests.
[[nodiscard]] Dataset make_two_blobs(std::size_t num_examples, double separation,
                                     sfl::util::Rng& rng);

struct LinearRegressionData {
  Dataset dataset;                    ///< regression dataset
  std::vector<double> true_weights;   ///< ground-truth weight vector
  double true_bias = 0.0;
};

/// y = w·x + b + N(0, noise²). Used to verify SGD against the closed form.
[[nodiscard]] LinearRegressionData make_linear_regression(std::size_t num_examples,
                                                          std::size_t feature_dim,
                                                          double noise_stddev,
                                                          sfl::util::Rng& rng);

/// Flips each label to a uniformly random *different* class with probability
/// `flip_probability`; returns the number of labels flipped. Models
/// low-quality clients.
std::size_t apply_label_noise(Dataset& dataset, double flip_probability,
                              sfl::util::Rng& rng);

}  // namespace sfl::data
