// Federated data partitioners.
//
// A partition assigns every training example to exactly one client. Three
// standard regimes are provided: IID, Dirichlet label skew (non-IID-ness
// controlled by alpha), and power-law quantity skew. Partitions compose with
// per-client label noise (see synthetic.h) to model data-quality
// heterogeneity.
#pragma once

#include <cstddef>
#include <vector>

#include "data/dataset.h"
#include "util/rng.h"

namespace sfl::data {

/// One index list per client; lists are disjoint and cover [0, n).
using Partition = std::vector<std::vector<std::size_t>>;

/// Shuffles [0, n) and deals examples round-robin; client sizes differ by at
/// most one. Requires num_clients >= 1 and n >= num_clients.
[[nodiscard]] Partition partition_iid(std::size_t num_examples,
                                      std::size_t num_clients, sfl::util::Rng& rng);

/// Label-skew partition: for each class, client shares are drawn from a
/// symmetric Dirichlet(alpha). Small alpha -> each client dominated by few
/// classes; alpha -> infinity recovers IID. Clients left empty (possible at
/// tiny alpha) are given one example stolen from the largest client so every
/// client can participate.
[[nodiscard]] Partition partition_dirichlet_label_skew(const Dataset& dataset,
                                                       std::size_t num_clients,
                                                       double alpha,
                                                       sfl::util::Rng& rng);

/// Quantity skew: client sizes proportional to lognormal(0, sigma) draws
/// (sigma = 0 recovers near-equal sizes); every client gets >= 1 example.
[[nodiscard]] Partition partition_quantity_skew(std::size_t num_examples,
                                                std::size_t num_clients,
                                                double sigma, sfl::util::Rng& rng);

/// Validates that `partition` is disjoint and covers [0, n); throws on
/// violation. Used by tests and by FederatedDataset's constructor.
void validate_partition(const Partition& partition, std::size_t num_examples);

/// A federated view: global train/test data plus per-client shards
/// materialized as datasets.
class FederatedDataset {
 public:
  /// Builds per-client shards from `train` and `partition` (validated).
  FederatedDataset(Dataset train, Dataset test, const Partition& partition);

  [[nodiscard]] std::size_t num_clients() const noexcept { return shards_.size(); }
  [[nodiscard]] const Dataset& shard(std::size_t client) const;
  [[nodiscard]] Dataset& mutable_shard(std::size_t client);
  [[nodiscard]] const Dataset& test_set() const noexcept { return test_; }
  [[nodiscard]] const Dataset& train_set() const noexcept { return train_; }

  /// Data size of one client (shard example count).
  [[nodiscard]] std::size_t shard_size(std::size_t client) const;

  /// Total examples across shards.
  [[nodiscard]] std::size_t total_examples() const noexcept { return total_; }

 private:
  Dataset train_;
  Dataset test_;
  std::vector<Dataset> shards_;
  std::size_t total_ = 0;
};

}  // namespace sfl::data
