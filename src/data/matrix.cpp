#include "data/matrix.h"

#include <cmath>

#include "util/require.h"

namespace sfl::data {

using sfl::util::require;

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), values_(rows * cols, 0.0) {}

Matrix::Matrix(std::size_t rows, std::size_t cols, std::vector<double> values)
    : rows_(rows), cols_(cols), values_(std::move(values)) {
  require(values_.size() == rows * cols,
          "matrix storage size must equal rows*cols");
}

Matrix Matrix::zeros(std::size_t rows, std::size_t cols) { return Matrix(rows, cols); }

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.at(i, i) = 1.0;
  return m;
}

Matrix Matrix::random_normal(std::size_t rows, std::size_t cols, double stddev,
                             sfl::util::Rng& rng) {
  Matrix m(rows, cols);
  for (auto& v : m.values_) v = rng.normal(0.0, stddev);
  return m;
}

double& Matrix::at(std::size_t r, std::size_t c) {
  require(r < rows_ && c < cols_, "matrix index out of range");
  return values_[r * cols_ + c];
}

double Matrix::at(std::size_t r, std::size_t c) const {
  require(r < rows_ && c < cols_, "matrix index out of range");
  return values_[r * cols_ + c];
}

std::span<const double> Matrix::row(std::size_t r) const {
  require(r < rows_, "matrix row out of range");
  return {values_.data() + r * cols_, cols_};
}

std::span<double> Matrix::row(std::size_t r) {
  require(r < rows_, "matrix row out of range");
  return {values_.data() + r * cols_, cols_};
}

void Matrix::add_scaled(const Matrix& other, double alpha) {
  require(rows_ == other.rows_ && cols_ == other.cols_,
          "add_scaled requires matching shapes");
  for (std::size_t i = 0; i < values_.size(); ++i) {
    values_[i] += alpha * other.values_[i];
  }
}

void Matrix::scale(double alpha) noexcept {
  for (auto& v : values_) v *= alpha;
}

void Matrix::fill(double value) noexcept {
  for (auto& v : values_) v = value;
}

Matrix Matrix::transpose() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      t.values_[c * rows_ + r] = values_[r * cols_ + c];
    }
  }
  return t;
}

double Matrix::frobenius_norm() const noexcept {
  double sum = 0.0;
  for (const double v : values_) sum += v * v;
  return std::sqrt(sum);
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  require(a.cols() == b.rows(), "matmul inner dimensions must agree");
  Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a.at(i, k);
      if (aik == 0.0) continue;
      const auto brow = b.row(k);
      auto crow = c.row(i);
      for (std::size_t j = 0; j < b.cols(); ++j) {
        crow[j] += aik * brow[j];
      }
    }
  }
  return c;
}

std::vector<double> matvec(const Matrix& a, std::span<const double> x) {
  require(x.size() == a.cols(), "matvec dimension mismatch");
  std::vector<double> y(a.rows(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    y[i] = dot(a.row(i), x);
  }
  return y;
}

std::vector<double> matvec_transposed(const Matrix& a, std::span<const double> x) {
  require(x.size() == a.rows(), "matvec_transposed dimension mismatch");
  std::vector<double> y(a.cols(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const auto arow = a.row(i);
    const double xi = x[i];
    for (std::size_t j = 0; j < a.cols(); ++j) {
      y[j] += arow[j] * xi;
    }
  }
  return y;
}

double dot(std::span<const double> a, std::span<const double> b) {
  require(a.size() == b.size(), "dot product size mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

double l2_norm(std::span<const double> v) noexcept {
  double sum = 0.0;
  for (const double x : v) sum += x * x;
  return std::sqrt(sum);
}

void axpy(std::span<double> a, std::span<const double> b, double alpha) {
  require(a.size() == b.size(), "axpy size mismatch");
  for (std::size_t i = 0; i < a.size(); ++i) a[i] += alpha * b[i];
}

}  // namespace sfl::data
