// In-memory supervised dataset (classification or regression).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "data/matrix.h"
#include "util/rng.h"

namespace sfl::data {

/// Feature matrix plus either integer class labels (num_classes > 0) or
/// real-valued regression targets (num_classes == 0).
class Dataset {
 public:
  Dataset() = default;

  /// Classification dataset. labels[i] in [0, num_classes).
  Dataset(Matrix features, std::vector<int> labels, std::size_t num_classes);

  /// Regression dataset.
  Dataset(Matrix features, std::vector<double> targets);

  [[nodiscard]] std::size_t size() const noexcept { return features_.rows(); }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }
  [[nodiscard]] std::size_t feature_dim() const noexcept { return features_.cols(); }
  [[nodiscard]] std::size_t num_classes() const noexcept { return num_classes_; }
  [[nodiscard]] bool is_classification() const noexcept { return num_classes_ > 0; }

  [[nodiscard]] std::span<const double> example(std::size_t i) const;
  [[nodiscard]] int label(std::size_t i) const;
  [[nodiscard]] double target(std::size_t i) const;

  [[nodiscard]] const Matrix& features() const noexcept { return features_; }
  [[nodiscard]] const std::vector<int>& labels() const noexcept { return labels_; }
  [[nodiscard]] const std::vector<double>& targets() const noexcept { return targets_; }

  /// Materializes the examples at `indices` (duplicates allowed) as a new
  /// dataset of the same kind.
  [[nodiscard]] Dataset subset(std::span<const std::size_t> indices) const;

  /// Counts per class; size num_classes(). Classification only.
  [[nodiscard]] std::vector<std::size_t> class_histogram() const;

  /// Randomly splits into (first, second) with `first_fraction` of examples
  /// in the first part (at least one example in each when size >= 2).
  [[nodiscard]] std::pair<Dataset, Dataset> split(double first_fraction,
                                                  sfl::util::Rng& rng) const;

  /// Overwrites label `i`. Classification only; used by the label-noise
  /// quality model.
  void set_label(std::size_t i, int label);

 private:
  Matrix features_;
  std::vector<int> labels_;
  std::vector<double> targets_;
  std::size_t num_classes_ = 0;
};

}  // namespace sfl::data
