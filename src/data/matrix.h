// Dense row-major matrix of doubles.
//
// This is deliberately a small, purpose-built type: the FL substrate needs
// storage plus a handful of BLAS-1/2/3 operations on models with ~1e4-1e5
// parameters, not a general linear-algebra library.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/rng.h"

namespace sfl::data {

class Matrix {
 public:
  Matrix() = default;

  /// rows x cols, zero-initialized.
  Matrix(std::size_t rows, std::size_t cols);

  /// rows x cols initialized from `values` (size must be rows*cols, row-major).
  Matrix(std::size_t rows, std::size_t cols, std::vector<double> values);

  [[nodiscard]] static Matrix zeros(std::size_t rows, std::size_t cols);
  [[nodiscard]] static Matrix identity(std::size_t n);

  /// Entries ~ N(0, stddev^2); used for model initialization.
  [[nodiscard]] static Matrix random_normal(std::size_t rows, std::size_t cols,
                                            double stddev, sfl::util::Rng& rng);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t cols() const noexcept { return cols_; }
  [[nodiscard]] std::size_t size() const noexcept { return values_.size(); }
  [[nodiscard]] bool empty() const noexcept { return values_.empty(); }

  [[nodiscard]] double& at(std::size_t r, std::size_t c);
  [[nodiscard]] double at(std::size_t r, std::size_t c) const;

  /// Unchecked contiguous storage access (row-major).
  [[nodiscard]] std::span<double> data() noexcept { return values_; }
  [[nodiscard]] std::span<const double> data() const noexcept { return values_; }

  /// View of one row.
  [[nodiscard]] std::span<const double> row(std::size_t r) const;
  [[nodiscard]] std::span<double> row(std::size_t r);

  /// this = this + alpha * other (same shape required).
  void add_scaled(const Matrix& other, double alpha);

  void scale(double alpha) noexcept;
  void fill(double value) noexcept;

  [[nodiscard]] Matrix transpose() const;

  /// Frobenius norm.
  [[nodiscard]] double frobenius_norm() const noexcept;

  friend bool operator==(const Matrix&, const Matrix&) = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> values_;
};

/// C = A * B. Inner dimensions must agree.
[[nodiscard]] Matrix matmul(const Matrix& a, const Matrix& b);

/// y = A * x (x.size() == A.cols()). Returns vector of length A.rows().
[[nodiscard]] std::vector<double> matvec(const Matrix& a, std::span<const double> x);

/// y = A^T * x (x.size() == A.rows()). Returns vector of length A.cols().
[[nodiscard]] std::vector<double> matvec_transposed(const Matrix& a,
                                                    std::span<const double> x);

/// Dot product; sizes must match.
[[nodiscard]] double dot(std::span<const double> a, std::span<const double> b);

/// L2 norm.
[[nodiscard]] double l2_norm(std::span<const double> v) noexcept;

/// a += alpha * b (sizes must match).
void axpy(std::span<double> a, std::span<const double> b, double alpha);

}  // namespace sfl::data
