#include "data/partition.h"

#include <algorithm>
#include <numeric>

#include "util/require.h"

namespace sfl::data {

using sfl::util::checked_index;
using sfl::util::require;

Partition partition_iid(std::size_t num_examples, std::size_t num_clients,
                        sfl::util::Rng& rng) {
  require(num_clients >= 1, "need at least one client");
  require(num_examples >= num_clients, "need at least one example per client");
  std::vector<std::size_t> order(num_examples);
  std::iota(order.begin(), order.end(), std::size_t{0});
  rng.shuffle(order);
  Partition partition(num_clients);
  for (std::size_t i = 0; i < num_examples; ++i) {
    partition[i % num_clients].push_back(order[i]);
  }
  return partition;
}

Partition partition_dirichlet_label_skew(const Dataset& dataset,
                                         std::size_t num_clients, double alpha,
                                         sfl::util::Rng& rng) {
  require(dataset.is_classification(), "label skew needs a classification dataset");
  require(num_clients >= 1, "need at least one client");
  require(dataset.size() >= num_clients, "need at least one example per client");
  require(alpha > 0.0, "Dirichlet concentration must be > 0");

  // Bucket example indices by class, shuffled within each class.
  std::vector<std::vector<std::size_t>> by_class(dataset.num_classes());
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    by_class[static_cast<std::size_t>(dataset.label(i))].push_back(i);
  }
  for (auto& bucket : by_class) rng.shuffle(bucket);

  Partition partition(num_clients);
  for (auto& bucket : by_class) {
    if (bucket.empty()) continue;
    const std::vector<double> shares = rng.dirichlet(num_clients, alpha);
    // Largest-remainder apportionment of this class's examples.
    std::vector<std::size_t> counts(num_clients, 0);
    std::vector<std::pair<double, std::size_t>> remainders;
    std::size_t assigned = 0;
    for (std::size_t c = 0; c < num_clients; ++c) {
      const double exact = shares[c] * static_cast<double>(bucket.size());
      counts[c] = static_cast<std::size_t>(exact);
      assigned += counts[c];
      remainders.emplace_back(exact - static_cast<double>(counts[c]), c);
    }
    std::sort(remainders.begin(), remainders.end(),
              [](const auto& a, const auto& b) { return a.first > b.first; });
    for (std::size_t r = 0; assigned < bucket.size(); ++r, ++assigned) {
      ++counts[remainders[r % remainders.size()].second];
    }
    std::size_t cursor = 0;
    for (std::size_t c = 0; c < num_clients; ++c) {
      for (std::size_t k = 0; k < counts[c]; ++k) {
        partition[c].push_back(bucket[cursor++]);
      }
    }
  }

  // Guarantee every client holds at least one example (tiny alpha can starve
  // clients; an empty shard cannot train).
  for (std::size_t c = 0; c < num_clients; ++c) {
    if (!partition[c].empty()) continue;
    const auto richest = static_cast<std::size_t>(std::distance(
        partition.begin(),
        std::max_element(partition.begin(), partition.end(),
                         [](const auto& a, const auto& b) {
                           return a.size() < b.size();
                         })));
    require(partition[richest].size() > 1, "not enough examples to cover clients");
    partition[c].push_back(partition[richest].back());
    partition[richest].pop_back();
  }
  return partition;
}

Partition partition_quantity_skew(std::size_t num_examples, std::size_t num_clients,
                                  double sigma, sfl::util::Rng& rng) {
  require(num_clients >= 1, "need at least one client");
  require(num_examples >= num_clients, "need at least one example per client");
  require(sigma >= 0.0, "lognormal sigma must be >= 0");

  std::vector<double> raw(num_clients);
  for (auto& r : raw) r = rng.lognormal(0.0, sigma);
  const double total = std::accumulate(raw.begin(), raw.end(), 0.0);

  // Start with one example per client, then distribute the remainder
  // proportionally with largest remainders.
  std::vector<std::size_t> sizes(num_clients, 1);
  std::size_t remaining = num_examples - num_clients;
  std::vector<std::pair<double, std::size_t>> remainders;
  std::size_t assigned = 0;
  for (std::size_t c = 0; c < num_clients; ++c) {
    const double exact = raw[c] / total * static_cast<double>(remaining);
    const auto whole = static_cast<std::size_t>(exact);
    sizes[c] += whole;
    assigned += whole;
    remainders.emplace_back(exact - static_cast<double>(whole), c);
  }
  std::sort(remainders.begin(), remainders.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  for (std::size_t r = 0; assigned < remaining; ++r, ++assigned) {
    ++sizes[remainders[r % remainders.size()].second];
  }

  std::vector<std::size_t> order(num_examples);
  std::iota(order.begin(), order.end(), std::size_t{0});
  rng.shuffle(order);
  Partition partition(num_clients);
  std::size_t cursor = 0;
  for (std::size_t c = 0; c < num_clients; ++c) {
    partition[c].assign(order.begin() + static_cast<std::ptrdiff_t>(cursor),
                        order.begin() + static_cast<std::ptrdiff_t>(cursor + sizes[c]));
    cursor += sizes[c];
  }
  return partition;
}

void validate_partition(const Partition& partition, std::size_t num_examples) {
  std::vector<bool> seen(num_examples, false);
  std::size_t count = 0;
  for (const auto& shard : partition) {
    for (const std::size_t index : shard) {
      require(index < num_examples, "partition index out of range");
      require(!seen[index], "partition assigns an example twice");
      seen[index] = true;
      ++count;
    }
  }
  require(count == num_examples, "partition does not cover all examples");
}

FederatedDataset::FederatedDataset(Dataset train, Dataset test,
                                   const Partition& partition)
    : train_(std::move(train)), test_(std::move(test)) {
  validate_partition(partition, train_.size());
  shards_.reserve(partition.size());
  for (const auto& indices : partition) {
    require(!indices.empty(), "every client shard must be non-empty");
    shards_.push_back(train_.subset(indices));
    total_ += indices.size();
  }
}

const Dataset& FederatedDataset::shard(std::size_t client) const {
  return shards_[checked_index(client, shards_.size(), "client shard")];
}

Dataset& FederatedDataset::mutable_shard(std::size_t client) {
  return shards_[checked_index(client, shards_.size(), "client shard")];
}

std::size_t FederatedDataset::shard_size(std::size_t client) const {
  return shard(client).size();
}

}  // namespace sfl::data
