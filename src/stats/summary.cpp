#include "stats/summary.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/require.h"

namespace sfl::stats {

using sfl::util::require;

double quantile(std::vector<double> values, double q) {
  require(!values.empty(), "quantile of empty sample");
  require(q >= 0.0 && q <= 1.0, "quantile level must be in [0, 1]");
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values.front();
  const double pos = q * static_cast<double>(values.size() - 1);
  const auto lower = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(lower);
  if (lower + 1 >= values.size()) return values.back();
  return values[lower] * (1.0 - frac) + values[lower + 1] * frac;
}

double median(std::vector<double> values) { return quantile(std::move(values), 0.5); }

double jain_fairness_index(const std::vector<double>& values) {
  require(!values.empty(), "fairness index of empty sample");
  double sum = 0.0;
  double sum_sq = 0.0;
  for (const double v : values) {
    require(v >= 0.0, "fairness index requires non-negative values");
    sum += v;
    sum_sq += v * v;
  }
  require(sum > 0.0, "fairness index requires a positive total");
  return (sum * sum) / (static_cast<double>(values.size()) * sum_sq);
}

double gini_coefficient(std::vector<double> values) {
  require(!values.empty(), "gini of empty sample");
  for (const double v : values) {
    require(v >= 0.0, "gini requires non-negative values");
  }
  std::sort(values.begin(), values.end());
  const double n = static_cast<double>(values.size());
  double weighted = 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < values.size(); ++i) {
    weighted += (2.0 * static_cast<double>(i + 1) - n - 1.0) * values[i];
    total += values[i];
  }
  if (total <= 0.0) return 0.0;  // all zeros: perfectly equal
  return weighted / (n * total);
}

BootstrapInterval bootstrap_mean_ci(const std::vector<double>& values,
                                    double confidence, std::size_t resamples,
                                    sfl::util::Rng& rng) {
  require(!values.empty(), "bootstrap of empty sample");
  require(confidence > 0.0 && confidence < 1.0, "confidence must be in (0, 1)");
  require(resamples >= 1, "bootstrap needs at least one resample");
  std::vector<double> means;
  means.reserve(resamples);
  for (std::size_t r = 0; r < resamples; ++r) {
    double sum = 0.0;
    for (std::size_t i = 0; i < values.size(); ++i) {
      sum += values[rng.uniform_index(values.size())];
    }
    means.push_back(sum / static_cast<double>(values.size()));
  }
  const double alpha = 1.0 - confidence;
  BootstrapInterval ci;
  ci.point = std::accumulate(values.begin(), values.end(), 0.0) /
             static_cast<double>(values.size());
  ci.lo = quantile(means, alpha / 2.0);
  ci.hi = quantile(std::move(means), 1.0 - alpha / 2.0);
  return ci;
}

LinearFit linear_fit(const std::vector<double>& xs, const std::vector<double>& ys) {
  require(xs.size() == ys.size(), "linear fit needs equal-length inputs");
  require(xs.size() >= 2, "linear fit needs at least two points");
  const double n = static_cast<double>(xs.size());
  const double mean_x = std::accumulate(xs.begin(), xs.end(), 0.0) / n;
  const double mean_y = std::accumulate(ys.begin(), ys.end(), 0.0) / n;
  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mean_x;
    const double dy = ys[i] - mean_y;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  require(sxx > 0.0, "linear fit requires non-constant x values");
  LinearFit fit;
  fit.slope = sxy / sxx;
  fit.intercept = mean_y - fit.slope * mean_x;
  fit.r_squared = syy > 0.0 ? (sxy * sxy) / (sxx * syy) : 1.0;
  return fit;
}

double pearson_correlation(const std::vector<double>& xs,
                           const std::vector<double>& ys) {
  require(xs.size() == ys.size(), "correlation needs equal-length inputs");
  require(xs.size() >= 2, "correlation needs at least two points");
  const double n = static_cast<double>(xs.size());
  const double mean_x = std::accumulate(xs.begin(), xs.end(), 0.0) / n;
  const double mean_y = std::accumulate(ys.begin(), ys.end(), 0.0) / n;
  double sxx = 0.0;
  double sxy = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mean_x;
    const double dy = ys[i] - mean_y;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  require(sxx > 0.0 && syy > 0.0, "correlation requires nonzero variance");
  return sxy / std::sqrt(sxx * syy);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  require(bins > 0, "histogram needs at least one bucket");
  require(hi > lo, "histogram range must be non-empty");
}

void Histogram::add(double value) noexcept {
  auto bucket = static_cast<std::ptrdiff_t>((value - lo_) / width_);
  bucket = std::clamp<std::ptrdiff_t>(bucket, 0,
                                      static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bucket)];
  ++total_;
}

std::size_t Histogram::count(std::size_t bucket) const {
  return counts_[sfl::util::checked_index(bucket, counts_.size(), "histogram bucket")];
}

double Histogram::bucket_lo(std::size_t bucket) const {
  sfl::util::checked_index(bucket, counts_.size(), "histogram bucket");
  return lo_ + width_ * static_cast<double>(bucket);
}

double Histogram::bucket_hi(std::size_t bucket) const {
  return bucket_lo(bucket) + width_;
}

}  // namespace sfl::stats
