// Fixed-bucket log-scale latency recorder.
//
// Buckets are spaced geometrically (buckets_per_decade per power of ten
// between min_value and max_value), so relative quantile error is bounded
// by the bucket ratio (~12% at 20 buckets/decade) across the whole range —
// the usual trade for O(1) record and O(buckets) memory. count/sum/min/max
// are tracked exactly; quantiles are read from the bucket edges. Two
// recorders with the same geometry merge by bucket-wise addition, so
// per-connection or per-tier histograms can be combined losslessly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace sfl::stats {

struct LatencyHistogramConfig {
  double min_value = 1.0;  ///< values below clamp into the first bucket
  double max_value = 1e9;  ///< values above clamp into the last bucket
  std::size_t buckets_per_decade = 20;

  [[nodiscard]] bool operator==(const LatencyHistogramConfig&) const = default;
};

class LatencyHistogram {
 public:
  LatencyHistogram() : LatencyHistogram(LatencyHistogramConfig{}) {}
  explicit LatencyHistogram(const LatencyHistogramConfig& config);

  void record(double value) noexcept;

  /// Bucket-wise addition; requires identical geometry (checked).
  void merge(const LatencyHistogram& other);

  /// Smallest value v such that at least ceil(q * count) recorded samples
  /// are <= its bucket's upper edge. quantile(0) returns the exact min,
  /// quantile(1) the exact max; q outside [0, 1] is clamped. 0 when empty.
  [[nodiscard]] double quantile(double q) const noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept {
    return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
  }
  [[nodiscard]] double min() const noexcept { return count_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return count_ > 0 ? max_ : 0.0; }

  [[nodiscard]] const LatencyHistogramConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] std::size_t bucket_count() const noexcept {
    return counts_.size();
  }
  [[nodiscard]] std::uint64_t bucket_samples(std::size_t i) const noexcept {
    return counts_[i];
  }
  /// Upper edge of bucket i (inclusive; the last edge is max_value).
  [[nodiscard]] double bucket_upper_edge(std::size_t i) const noexcept;

 private:
  [[nodiscard]] std::size_t bucket_index(double value) const noexcept;

  LatencyHistogramConfig config_;
  double log_min_ = 0.0;
  double inv_log_step_ = 0.0;  ///< buckets_per_decade / ln(10)
  std::vector<std::uint64_t> counts_;
  std::size_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace sfl::stats
