#include "stats/latency_histogram.h"

#include <algorithm>
#include <cmath>

#include "util/require.h"

namespace sfl::stats {

LatencyHistogram::LatencyHistogram(const LatencyHistogramConfig& config)
    : config_(config) {
  sfl::util::require(config.min_value > 0.0,
                     "LatencyHistogram: min_value must be > 0 (log scale)");
  sfl::util::require(config.max_value > config.min_value,
                     "LatencyHistogram: max_value must exceed min_value");
  sfl::util::require(config.buckets_per_decade > 0,
                     "LatencyHistogram: buckets_per_decade must be > 0");
  log_min_ = std::log(config.min_value);
  inv_log_step_ =
      static_cast<double>(config.buckets_per_decade) / std::log(10.0);
  const double decades =
      std::log10(config.max_value) - std::log10(config.min_value);
  const std::size_t buckets = static_cast<std::size_t>(std::ceil(
      decades * static_cast<double>(config.buckets_per_decade)));
  counts_.assign(buckets > 0 ? buckets : 1, 0);
}

std::size_t LatencyHistogram::bucket_index(double value) const noexcept {
  if (!(value > config_.min_value)) return 0;  // also catches NaN
  if (value >= config_.max_value) return counts_.size() - 1;
  const double offset = (std::log(value) - log_min_) * inv_log_step_;
  auto index = static_cast<std::size_t>(offset);
  return std::min(index, counts_.size() - 1);
}

void LatencyHistogram::record(double value) noexcept {
  if (std::isnan(value)) return;
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
  ++counts_[bucket_index(value)];
}

void LatencyHistogram::merge(const LatencyHistogram& other) {
  sfl::util::require(config_ == other.config_,
                     "LatencyHistogram::merge: geometry mismatch");
  if (other.count_ == 0) return;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    counts_[i] += other.counts_[i];
  }
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

double LatencyHistogram::bucket_upper_edge(std::size_t i) const noexcept {
  if (i + 1 >= counts_.size()) return config_.max_value;
  const double exponent =
      static_cast<double>(i + 1) / inv_log_step_ + log_min_;
  return std::exp(exponent);
}

double LatencyHistogram::quantile(double q) const noexcept {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  if (q <= 0.0) return min_;
  if (q >= 1.0) return max_;
  const auto target = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cumulative += counts_[i];
    if (cumulative >= target) {
      // Clamp the bucket edge to the observed range so a lone sample
      // never reports a quantile past the true max.
      return std::min(bucket_upper_edge(i), max_);
    }
  }
  return max_;
}

}  // namespace sfl::stats
