// Streaming summary statistics (Welford's online algorithm).
#pragma once

#include <cstddef>
#include <limits>

namespace sfl::stats {

/// Numerically stable running mean/variance/min/max accumulator.
class RunningStats {
 public:
  void add(double value) noexcept;

  /// Merges another accumulator (parallel reduction, Chan et al.).
  void merge(const RunningStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return count_ > 0 ? mean_ : 0.0; }

  /// Population variance (divides by n); 0 for n < 1.
  [[nodiscard]] double variance() const noexcept;

  /// Sample variance (divides by n-1); 0 for n < 2.
  [[nodiscard]] double sample_variance() const noexcept;

  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double sample_stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(count_); }

  /// Standard error of the mean (sample stddev / sqrt(n)); 0 for n < 2.
  [[nodiscard]] double standard_error() const noexcept;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace sfl::stats
