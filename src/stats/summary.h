// Batch statistics over vectors: quantiles, fairness, bootstrap CIs,
// least-squares fits (used to verify the O(1/V) / O(V) Lyapunov scalings).
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.h"

namespace sfl::stats {

/// Linear interpolation quantile (type-7, same convention as numpy default).
/// Requires non-empty values; q in [0, 1]. Sorts a copy.
[[nodiscard]] double quantile(std::vector<double> values, double q);

[[nodiscard]] double median(std::vector<double> values);

/// Jain's fairness index: (Σx)² / (n·Σx²) in (0, 1], 1 = perfectly fair.
/// Requires non-empty, non-negative values with a positive sum.
[[nodiscard]] double jain_fairness_index(const std::vector<double>& values);

/// Gini coefficient in [0, 1); 0 = perfect equality. Requires non-empty,
/// non-negative values.
[[nodiscard]] double gini_coefficient(std::vector<double> values);

struct BootstrapInterval {
  double point = 0.0;  ///< sample mean
  double lo = 0.0;     ///< lower percentile bound
  double hi = 0.0;     ///< upper percentile bound
};

/// Percentile bootstrap CI of the mean. `confidence` in (0, 1);
/// `resamples` >= 1; `values` non-empty.
[[nodiscard]] BootstrapInterval bootstrap_mean_ci(const std::vector<double>& values,
                                                  double confidence,
                                                  std::size_t resamples,
                                                  sfl::util::Rng& rng);

struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
};

/// Ordinary least squares y = a·x + b. Requires xs.size() == ys.size() >= 2
/// and xs not all identical.
[[nodiscard]] LinearFit linear_fit(const std::vector<double>& xs,
                                   const std::vector<double>& ys);

/// Pearson correlation; requires equal sizes >= 2 and nonzero variances.
[[nodiscard]] double pearson_correlation(const std::vector<double>& xs,
                                         const std::vector<double>& ys);

/// Fixed-width histogram over [lo, hi) with `bins` buckets; values outside
/// the range are clamped into the first/last bucket.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double value) noexcept;
  [[nodiscard]] std::size_t bucket_count() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t count(std::size_t bucket) const;
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] double bucket_lo(std::size_t bucket) const;
  [[nodiscard]] double bucket_hi(std::size_t bucket) const;

 private:
  double lo_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace sfl::stats
