#include "stats/running_stats.h"

#include <algorithm>
#include <cmath>

namespace sfl::stats {

void RunningStats::add(double value) noexcept {
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n_a = static_cast<double>(count_);
  const double n_b = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n_a + n_b;
  mean_ += delta * n_b / n;
  m2_ += other.m2_ + delta * delta * n_a * n_b / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return count_ > 0 ? m2_ / static_cast<double>(count_) : 0.0;
}

double RunningStats::sample_variance() const noexcept {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::sample_stddev() const noexcept {
  return std::sqrt(sample_variance());
}

double RunningStats::standard_error() const noexcept {
  return count_ > 1 ? sample_stddev() / std::sqrt(static_cast<double>(count_)) : 0.0;
}

}  // namespace sfl::stats
