// Winner determination for the affine-maximizer procurement auction.
//
// Three solvers:
//  - select_top_m: exact for the modular objective with a cardinality cap
//    (the production path, O(n log n)).
//  - select_exhaustive: brute force over all subsets (n <= 24); the oracle
//    property tests compare against.
//  - select_knapsack: exact DP for the budget-constrained variant
//    (sum of bids <= budget), used by the budget-capped myopic baseline and
//    the scalability study.
// All solvers break score ties deterministically by candidate index so the
// allocation rule is a well-defined function of the bids.
#pragma once

#include <vector>

#include "auction/types.h"

namespace sfl::auction {

/// Exact argmax of total score over subsets with |S| <= max_winners for the
/// modular objective: picks candidates with positive score, highest first.
/// `penalties` must be empty or one per candidate.
[[nodiscard]] Allocation select_top_m(const std::vector<Candidate>& candidates,
                                      const ScoreWeights& weights,
                                      std::size_t max_winners,
                                      const Penalties& penalties = {});

/// Brute-force oracle (throws if candidates.size() > 24).
[[nodiscard]] Allocation select_exhaustive(const std::vector<Candidate>& candidates,
                                           const ScoreWeights& weights,
                                           std::size_t max_winners,
                                           const Penalties& penalties = {});

/// Exact knapsack DP: maximize total score subject to sum(bids) <= budget
/// and |S| <= max_winners. Bids are discretized to `resolution` (> 0) money
/// units; smaller resolution = more exact and more memory.
[[nodiscard]] Allocation select_knapsack(const std::vector<Candidate>& candidates,
                                         const ScoreWeights& weights,
                                         double budget, std::size_t max_winners,
                                         double resolution = 0.01,
                                         const Penalties& penalties = {});

/// Greedy marginal-score selection for a concave (diminishing-returns) value
/// of total selected "mass" (see ConcaveValuation). Returns the best prefix
/// of the greedy order. Approximation for the submodular WDP.
class ConcaveValuation;  // forward declaration (valuation.h)
[[nodiscard]] Allocation select_greedy_concave(const std::vector<Candidate>& candidates,
                                               const ConcaveValuation& valuation,
                                               const ScoreWeights& weights,
                                               std::size_t max_winners,
                                               const Penalties& penalties = {});

}  // namespace sfl::auction
