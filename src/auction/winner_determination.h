// Winner determination for the affine-maximizer procurement auction.
//
// Three solvers:
//  - select_top_m: exact for the modular objective with a cardinality cap.
//    The production path: scores every candidate, then takes the top m by
//    std::nth_element partial selection — O(n + m log m) expected instead
//    of a full O(n log n) sort. An SoA overload consumes a CandidateBatch
//    directly so the hot loop streams over contiguous arrays.
//  - select_exhaustive: brute force over all subsets (n <= 24); the oracle
//    property tests compare against.
//  - select_knapsack: exact DP for the budget-constrained variant
//    (sum of bids <= budget), used by the budget-capped myopic baseline and
//    the scalability study.
// All solvers break score ties deterministically — by ClientId first (so the
// rule is a function of the market, not of slate order), then by candidate
// index — making the allocation a well-defined function of the bids.
//
// The comparison oracles (knapsack DP, concave greedy) additionally have
// `threads` + OracleScratch overloads that run on the shared thread pool
// with the same bit-exactness contract as the sharded WDP: every thread
// count (0 = auto, 1 = serial, k = exactly k lanes) produces bit-identical
// allocations, because lanes only partition independent per-element work
// (per-cell DP transitions, per-candidate gain evaluations) and every
// reduction happens under the serial strict total order.
#pragma once

#include <span>
#include <vector>

#include "auction/candidate_batch.h"
#include "auction/round_scratch.h"
#include "auction/types.h"

namespace sfl::auction {

/// Exact argmax of total score over subsets with |S| <= max_winners for the
/// modular objective: picks candidates with positive score, highest first.
/// `penalties` must be empty or one per candidate.
[[nodiscard]] Allocation select_top_m(const std::vector<Candidate>& candidates,
                                      const ScoreWeights& weights,
                                      std::size_t max_winners,
                                      const Penalties& penalties = {});

/// Batched SoA variant of select_top_m: identical selection (bit-for-bit
/// scores and tie-breaks), but scoring streams over the batch's contiguous
/// arrays. Candidate data is validated at CandidateBatch construction, not
/// here (SFL_VALIDATE=1 re-enables the full scan). This is the entry point
/// the scalability path measures.
[[nodiscard]] Allocation select_top_m(const CandidateBatch& batch,
                                      const ScoreWeights& weights,
                                      std::size_t max_winners,
                                      const Penalties& penalties = {});

/// Scratch-reusing serial variant: identical results to the allocating batch
/// overload, but scores, ordering buffers, and the allocation itself live in
/// the caller-owned RoundScratch, so a warmed-up round allocates nothing.
/// Returns scratch.allocation.
const Allocation& select_top_m(const CandidateBatch& batch,
                               const ScoreWeights& weights,
                               std::size_t max_winners,
                               const Penalties& penalties,
                               RoundScratch& scratch);

/// Shared selection core: given precomputed scores (aligned with `ids`),
/// returns the top-max_winners positive-score subset with deterministic
/// (score desc, ClientId asc, index asc) ordering. Exposed for solvers and
/// tests that already hold a score array.
[[nodiscard]] Allocation top_m_from_scores(std::span<const double> scores,
                                           std::span<const ClientId> ids,
                                           std::size_t max_winners);

/// Brute-force oracle (throws if candidates.size() > 24).
[[nodiscard]] Allocation select_exhaustive(const std::vector<Candidate>& candidates,
                                           const ScoreWeights& weights,
                                           std::size_t max_winners,
                                           const Penalties& penalties = {});

/// Exact knapsack DP: maximize total score subject to sum(bids) <= budget
/// and |S| <= max_winners. Bids are discretized to `resolution` (> 0) money
/// units; smaller resolution = more exact and more memory.
[[nodiscard]] Allocation select_knapsack(const std::vector<Candidate>& candidates,
                                         const ScoreWeights& weights,
                                         double budget, std::size_t max_winners,
                                         double resolution = 0.01,
                                         const Penalties& penalties = {});

/// Batched SoA knapsack: identical DP (and results) to the AoS overload,
/// scoring streamed over the batch arrays.
[[nodiscard]] Allocation select_knapsack(const CandidateBatch& batch,
                                         const ScoreWeights& weights,
                                         double budget, std::size_t max_winners,
                                         double resolution = 0.01,
                                         const Penalties& penalties = {});

/// Parallel scratch-reusing knapsack: each DP layer's (winners x budget)
/// plane is partitioned across the shared pool with a layer barrier (layer
/// `item` reads only layer `item - 1`, so lanes never race), bit-identical
/// to the serial DP at every thread count. `threads`: 0 = auto (hardware,
/// capped so lanes keep a useful span), 1 = serial (no pool touch), k =
/// exactly k lanes. The DP table and weight grid live in `scratch`, so
/// steady-state calls allocate nothing beyond the returned Allocation.
[[nodiscard]] Allocation select_knapsack(const std::vector<Candidate>& candidates,
                                         const ScoreWeights& weights,
                                         double budget, std::size_t max_winners,
                                         double resolution,
                                         const Penalties& penalties,
                                         std::size_t threads,
                                         OracleScratch& scratch);

/// Batched SoA variant of the parallel scratch-reusing knapsack.
[[nodiscard]] Allocation select_knapsack(const CandidateBatch& batch,
                                         const ScoreWeights& weights,
                                         double budget, std::size_t max_winners,
                                         double resolution,
                                         const Penalties& penalties,
                                         std::size_t threads,
                                         OracleScratch& scratch);

/// Greedy marginal-score selection for a concave (diminishing-returns) value
/// of total selected "mass" (see ConcaveValuation). Each step adds the
/// candidate maximizing the marginal gain under the strict total order
/// (gain desc, ClientId asc, index asc) among candidates whose gain exceeds
/// 1e-12; stops when none qualifies or max_winners is reached.
/// Approximation for the submodular WDP.
class ConcaveValuation;  // forward declaration (valuation.h)
[[nodiscard]] Allocation select_greedy_concave(const std::vector<Candidate>& candidates,
                                               const ConcaveValuation& valuation,
                                               const ScoreWeights& weights,
                                               std::size_t max_winners,
                                               const Penalties& penalties = {});

/// Parallel scratch-reusing greedy: each step's gain scan runs as a
/// per-chunk argmax on the shared pool, reduced across lanes under the same
/// strict total order the serial scan uses — so every thread count
/// (0 = auto, 1 = serial, k = exactly k lanes) selects the identical
/// prefix with bit-identical total_score. Gains and taken flags live in
/// `scratch`; steady-state calls allocate nothing beyond the returned
/// Allocation.
[[nodiscard]] Allocation select_greedy_concave(const std::vector<Candidate>& candidates,
                                               const ConcaveValuation& valuation,
                                               const ScoreWeights& weights,
                                               std::size_t max_winners,
                                               const Penalties& penalties,
                                               std::size_t threads,
                                               OracleScratch& scratch);

}  // namespace sfl::auction
