#include "auction/payments.h"

#include <algorithm>
#include <exception>

#include "auction/sharded_wdp.h"
#include "auction/winner_determination.h"
#include "util/require.h"
#include "util/thread_pool.h"

namespace sfl::auction {

using sfl::util::check_invariant;
using sfl::util::require;

namespace {

/// Accessor-based critical-payment core shared by the AoS and SoA overloads
/// (reads candidates in place, no gather copies). Loser scores go through
/// the one shared score() expression so both paths produce bit-identical
/// payments.
template <typename ValueAt, typename BidAt>
std::vector<double> critical_payments_core(std::size_t num_candidates,
                                           ValueAt value_at, BidAt bid_at,
                                           const ScoreWeights& weights,
                                           std::size_t max_winners,
                                           const Allocation& allocation,
                                           const Penalties& penalties) {
  require(weights.bid_weight > 0.0, "bid weight must be > 0");
  require(penalties.empty() || penalties.size() == num_candidates,
          "penalties must be empty or one per candidate");
  require(allocation.selected.size() <= max_winners,
          "allocation exceeds the winner cap");

  // Best score among losers: the bar a winner's score must stay above when
  // the slate is full. (When fewer than max_winners won, every positive
  // score was taken, so the bar is 0.)
  double best_loser_score = 0.0;
  for (std::size_t i = 0; i < num_candidates; ++i) {
    if (allocation.contains(i)) continue;
    const double loser_score =
        score(value_at(i), bid_at(i), weights, penalty_at(penalties, i));
    best_loser_score = std::max(best_loser_score, loser_score);
  }
  const bool slate_full = allocation.selected.size() == max_winners;
  const double threshold = slate_full ? best_loser_score : 0.0;

  std::vector<double> payments;
  payments.reserve(allocation.selected.size());
  for (const std::size_t raw_index : allocation.selected) {
    const std::size_t index =
        sfl::util::checked_index(raw_index, num_candidates, "winner");
    // phi_i(b) = vw*v_i - bw*b - pen_i stays above `threshold` while
    // b < (vw*v_i - pen_i - threshold)/bw: that boundary is the payment.
    const double critical_bid =
        (weights.value_weight * value_at(index) - penalty_at(penalties, index) -
         threshold) /
        weights.bid_weight;
    check_invariant(critical_bid >= bid_at(index) - 1e-9,
                    "critical payment below the winning bid");
    payments.push_back(std::max(critical_bid, bid_at(index)));
  }
  return payments;
}

}  // namespace

std::vector<double> critical_payments(const std::vector<Candidate>& candidates,
                                      const ScoreWeights& weights,
                                      std::size_t max_winners,
                                      const Allocation& allocation,
                                      const Penalties& penalties) {
  return critical_payments_core(
      candidates.size(), [&](std::size_t i) { return candidates[i].value; },
      [&](std::size_t i) { return candidates[i].bid; }, weights, max_winners,
      allocation, penalties);
}

std::vector<double> critical_payments(const CandidateBatch& batch,
                                      const ScoreWeights& weights,
                                      std::size_t max_winners,
                                      const Allocation& allocation,
                                      const Penalties& penalties) {
  const std::span<const double> values = batch.values();
  const std::span<const double> bids = batch.bids();
  return critical_payments_core(
      batch.size(), [&](std::size_t i) { return values[i]; },
      [&](std::size_t i) { return bids[i]; }, weights, max_winners, allocation,
      penalties);
}

const std::vector<double>& critical_payments(const CandidateBatch& batch,
                                             const ScoreWeights& weights,
                                             std::size_t max_winners,
                                             const Penalties& penalties,
                                             RoundScratch& scratch) {
  static const ShardedWdp serial_engine{ShardedWdpConfig{.shards = 1}};
  return serial_engine.critical_payments(batch, weights, max_winners,
                                         penalties, scratch);
}

namespace {

/// One winner's leave-one-out payment: builds the reduced slate into the
/// caller-provided buffers (capacity reused across winners within a lane),
/// re-solves, and returns the money-space externality payment. Shared by
/// the serial and parallel overloads, so every lane count runs the exact
/// same per-winner arithmetic.
double vcg_payment_for(const std::vector<Candidate>& candidates,
                       const ScoreWeights& weights, std::size_t max_winners,
                       const Allocation& allocation, const WdpSolver& solver,
                       const Penalties& penalties, std::size_t index,
                       std::vector<Candidate>& reduced,
                       Penalties& reduced_penalties) {
  const Candidate& winner =
      candidates[sfl::util::checked_index(index, candidates.size(), "winner")];

  // Re-solve without the winner.
  reduced.clear();
  reduced_penalties.clear();
  reduced.reserve(candidates.size() - 1);
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (i == index) continue;
    reduced.push_back(candidates[i]);
    if (!penalties.empty()) reduced_penalties.push_back(penalties[i]);
  }
  const Allocation without =
      solver(reduced, weights, max_winners, reduced_penalties);

  // Money-space externality: b_i + (OPT(all) - OPT(-i)) / bid_weight.
  const double externality =
      (allocation.total_score - without.total_score) / weights.bid_weight;
  check_invariant(externality >= -1e-9, "negative VCG externality");
  return winner.bid + std::max(externality, 0.0);
}

}  // namespace

std::vector<double> vcg_payments(const std::vector<Candidate>& candidates,
                                 const ScoreWeights& weights,
                                 std::size_t max_winners,
                                 const Allocation& allocation,
                                 const WdpSolver& solver,
                                 const Penalties& penalties) {
  OracleScratch scratch;
  return vcg_payments(candidates, weights, max_winners, allocation, solver,
                      penalties, /*threads=*/1, scratch);
}

std::vector<double> vcg_payments(const std::vector<Candidate>& candidates,
                                 const ScoreWeights& weights,
                                 std::size_t max_winners,
                                 const Allocation& allocation,
                                 const WdpSolver& solver,
                                 const Penalties& penalties,
                                 std::size_t threads, OracleScratch& scratch) {
  require(static_cast<bool>(solver), "vcg_payments needs a WDP solver");
  require(weights.bid_weight > 0.0, "bid weight must be > 0");
  require(penalties.empty() || penalties.size() == candidates.size(),
          "penalties must be empty or one per candidate");

  const std::size_t winners = allocation.selected.size();
  std::vector<double> payments(winners, 0.0);

  std::size_t lanes = threads == 0
                          ? sfl::util::shared_pool().thread_count()
                          : threads;
  lanes = std::clamp<std::size_t>(lanes, 1, std::max<std::size_t>(winners, 1));
  if (static_cast<std::size_t>(scratch.lane_slates.size()) < lanes) {
    scratch.lane_slates.resize(lanes);
  }
  if (static_cast<std::size_t>(scratch.lane_penalties.size()) < lanes) {
    scratch.lane_penalties.resize(lanes);
  }

  if (lanes <= 1) {
    for (std::size_t j = 0; j < winners; ++j) {
      payments[j] = vcg_payment_for(candidates, weights, max_winners,
                                    allocation, solver, penalties,
                                    allocation.selected[j],
                                    scratch.lane_slates[0],
                                    scratch.lane_penalties[0]);
    }
    return payments;
  }

  // Each lane owns a contiguous winner span and its own reduced-slate
  // buffers; per-winner payments are independent, so any partition yields
  // bit-identical results. The pool's fn must not throw — lane errors are
  // parked and the first one rethrown after the join, matching the fused
  // ShardedWdp::run_rounds pattern.
  std::vector<std::exception_ptr> lane_errors(lanes);
  sfl::util::shared_pool().parallel_for_chunks(
      winners, lanes,
      [&](std::size_t lane, std::size_t begin, std::size_t end) {
        try {
          for (std::size_t j = begin; j < end; ++j) {
            payments[j] = vcg_payment_for(candidates, weights, max_winners,
                                          allocation, solver, penalties,
                                          allocation.selected[j],
                                          scratch.lane_slates[lane],
                                          scratch.lane_penalties[lane]);
          }
        } catch (...) {
          lane_errors[lane] = std::current_exception();
        }
      });
  for (const std::exception_ptr& error : lane_errors) {
    if (error) std::rethrow_exception(error);
  }
  return payments;
}

MechanismResult make_result(const std::vector<Candidate>& candidates,
                            const Allocation& allocation,
                            std::vector<double> payments) {
  require(payments.size() == allocation.selected.size(),
          "one payment per winner required");
  MechanismResult result;
  result.winners.reserve(allocation.selected.size());
  for (const std::size_t index : allocation.selected) {
    result.winners.push_back(
        candidates[sfl::util::checked_index(index, candidates.size(), "winner")].id);
  }
  result.payments = std::move(payments);
  return result;
}

MechanismResult make_result(const CandidateBatch& batch,
                            const Allocation& allocation,
                            std::vector<double> payments) {
  require(payments.size() == allocation.selected.size(),
          "one payment per winner required");
  const std::span<const ClientId> ids = batch.ids();
  MechanismResult result;
  result.winners.reserve(allocation.selected.size());
  for (const std::size_t index : allocation.selected) {
    result.winners.push_back(
        ids[sfl::util::checked_index(index, batch.size(), "winner")]);
  }
  result.payments = std::move(payments);
  return result;
}

}  // namespace sfl::auction
