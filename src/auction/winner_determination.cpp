#include "auction/winner_determination.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "auction/sharded_wdp.h"
#include "auction/valuation.h"
#include "util/config.h"
#include "util/require.h"
#include "util/simd.h"

namespace sfl::auction {

using sfl::util::require;

namespace {

void validate_weights_and_penalties(const ScoreWeights& weights,
                                    const Penalties& penalties,
                                    std::size_t num_candidates) {
  require(weights.bid_weight > 0.0,
          "bid weight must be > 0 (otherwise bids do not matter)");
  require(weights.value_weight >= 0.0, "value weight must be >= 0");
  require(penalties.empty() || penalties.size() == num_candidates,
          "penalties must be empty or one per candidate");
}

void validate_inputs(const std::vector<Candidate>& candidates,
                     const ScoreWeights& weights, const Penalties& penalties) {
  validate_weights_and_penalties(weights, penalties, candidates.size());
  for (const auto& c : candidates) {
    require(c.value >= 0.0, "candidate value must be >= 0");
    require(c.bid >= 0.0, "candidate bid must be >= 0");
    require(c.energy_cost > 0.0, "candidate energy cost must be > 0");
  }
}

void validate_inputs(const CandidateBatch& batch, const ScoreWeights& weights,
                     const Penalties& penalties) {
  validate_weights_and_penalties(weights, penalties, batch.size());
  // Per-candidate data was validated when the batch was constructed; the
  // O(n) re-scan only runs in debug builds or under SFL_VALIDATE=1.
  if (sfl::util::validate_mode_enabled()) validate_batch(batch);
}

[[nodiscard]] std::vector<double> all_scores(const std::vector<Candidate>& candidates,
                                             const ScoreWeights& weights,
                                             const Penalties& penalties) {
  std::vector<double> scores(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    scores[i] = score(candidates[i], weights, penalty_at(penalties, i));
  }
  return scores;
}

}  // namespace

Allocation top_m_from_scores(std::span<const double> scores,
                             std::span<const ClientId> ids,
                             std::size_t max_winners) {
  require(scores.size() == ids.size(), "scores and ids must be aligned");
  const std::size_t n = scores.size();

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  // Strict total order: score desc, then ClientId asc, then index asc. The
  // id tie-break makes the rule a function of the market rather than of the
  // slate's arrival order; the index fallback keeps the order total even
  // under duplicate ids, so nth_element picks a deterministic top set.
  const auto better = [&scores, &ids](std::size_t a, std::size_t b) {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    if (ids[a] != ids[b]) return ids[a] < ids[b];
    return a < b;
  };

  // Partial selection: partition the top m to the front in O(n) expected,
  // then order just that prefix — O(n + m log m) vs O(n log n) for a full
  // sort. At m = 10, N = 100k this is the dominant win on the hot path.
  const std::size_t prefix = std::min(max_winners, n);
  if (prefix < n) {
    std::nth_element(order.begin(),
                     order.begin() + static_cast<std::ptrdiff_t>(prefix),
                     order.end(), better);
  }
  std::sort(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(prefix),
            better);

  Allocation allocation;
  for (std::size_t k = 0; k < prefix; ++k) {
    const std::size_t index = order[k];
    if (scores[index] <= 0.0) break;  // prefix is sorted; the rest are <= 0 too
    allocation.selected.push_back(index);
    allocation.total_score += scores[index];
  }
  std::sort(allocation.selected.begin(), allocation.selected.end());
  return allocation;
}

Allocation select_top_m(const std::vector<Candidate>& candidates,
                        const ScoreWeights& weights, std::size_t max_winners,
                        const Penalties& penalties) {
  validate_inputs(candidates, weights, penalties);
  const std::vector<double> scores = all_scores(candidates, weights, penalties);
  std::vector<ClientId> ids(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    ids[i] = candidates[i].id;
  }
  return top_m_from_scores(scores, ids, max_winners);
}

Allocation select_top_m(const CandidateBatch& batch, const ScoreWeights& weights,
                        std::size_t max_winners, const Penalties& penalties) {
  validate_inputs(batch, weights, penalties);
  // SoA scoring: one streaming pass over contiguous arrays through the
  // shared SIMD kernels, which are bit-identical to the score() expression
  // (the dispatch test enforces this), so AoS and batch paths agree
  // bit-for-bit.
  std::vector<double> scores(batch.size());
  sfl::util::simd::score_span(batch.values().data(), batch.bids().data(),
                              penalties.empty() ? nullptr : penalties.data(),
                              scores.data(), batch.size(),
                              weights.value_weight, weights.bid_weight);
  return top_m_from_scores(scores, batch.ids(), max_winners);
}

const Allocation& select_top_m(const CandidateBatch& batch,
                               const ScoreWeights& weights,
                               std::size_t max_winners,
                               const Penalties& penalties,
                               RoundScratch& scratch) {
  // One serial shard of the sharded engine IS the scratch-based serial
  // path; keeping a single implementation keeps the two provably
  // bit-identical.
  static const ShardedWdp serial_engine{ShardedWdpConfig{.shards = 1}};
  return serial_engine.select_top_m(batch, weights, max_winners, penalties,
                                    scratch);
}

Allocation select_exhaustive(const std::vector<Candidate>& candidates,
                             const ScoreWeights& weights, std::size_t max_winners,
                             const Penalties& penalties) {
  validate_inputs(candidates, weights, penalties);
  require(candidates.size() <= 24, "exhaustive WDP is limited to 24 candidates");
  const std::vector<double> scores = all_scores(candidates, weights, penalties);

  const std::size_t n = candidates.size();
  const std::uint64_t subsets = std::uint64_t{1} << n;
  double best_score = 0.0;
  std::uint64_t best_mask = 0;
  for (std::uint64_t mask = 0; mask < subsets; ++mask) {
    if (static_cast<std::size_t>(std::popcount(mask)) > max_winners) continue;
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if ((mask >> i) & 1ULL) total += scores[i];
    }
    // Strict improvement keeps the lexicographically-smallest optimal mask,
    // matching select_top_m's index tie-break.
    if (total > best_score + 1e-12) {
      best_score = total;
      best_mask = mask;
    }
  }

  Allocation allocation;
  allocation.total_score = best_score;
  for (std::size_t i = 0; i < n; ++i) {
    if ((best_mask >> i) & 1ULL) allocation.selected.push_back(i);
  }
  return allocation;
}

namespace {

/// Shared knapsack DP over precomputed scores and a bid accessor (AoS and
/// SoA overloads feed it the same values, so both produce identical
/// selections).
template <typename BidAt>
Allocation knapsack_core(std::size_t n, const std::vector<double>& scores,
                         BidAt bid_at, double budget, std::size_t max_winners,
                         double resolution) {
  require(budget >= 0.0, "knapsack budget must be >= 0");
  require(resolution > 0.0, "knapsack resolution must be > 0");

  // Epsilon-robust discretization: a bid sitting exactly on the grid must
  // not round up a unit from floating-point division noise.
  const auto capacity =
      static_cast<std::size_t>(std::floor(budget / resolution + 1e-9));
  const std::size_t k_cap = std::min(max_winners, n);
  if (capacity == 0 || k_cap == 0 || n == 0) return {};

  // Full DP table dp[item][k][w] = best score among the first `item`
  // candidates using <= k winners and <= w discretized budget. The full
  // table (rather than a rolling one) makes backtracking exact; memory is
  // (n+1)*(k_cap+1)*(capacity+1) doubles, so callers should keep
  // budget/resolution moderate (the scalability bench measures this).
  const std::size_t width = capacity + 1;
  const std::size_t plane = (k_cap + 1) * width;
  std::vector<double> dp((n + 1) * plane, 0.0);
  const auto cell = [&](std::size_t item, std::size_t k, std::size_t w) -> double& {
    return dp[item * plane + k * width + w];
  };

  std::vector<std::size_t> item_weight(n, capacity + 1);
  for (std::size_t item = 0; item < n; ++item) {
    item_weight[item] = static_cast<std::size_t>(
        std::ceil(bid_at(item) / resolution - 1e-9));
  }

  for (std::size_t item = 1; item <= n; ++item) {
    const std::size_t weight = item_weight[item - 1];
    const double gain = scores[item - 1];
    for (std::size_t k = 0; k <= k_cap; ++k) {
      for (std::size_t w = 0; w < width; ++w) {
        double best = cell(item - 1, k, w);
        if (k >= 1 && weight <= w && gain > 0.0) {
          best = std::max(best, cell(item - 1, k - 1, w - weight) + gain);
        }
        cell(item, k, w) = best;
      }
    }
  }

  Allocation allocation;
  allocation.total_score = cell(n, k_cap, capacity);
  // Backtrack from the final cell.
  std::size_t k = k_cap;
  std::size_t w = capacity;
  for (std::size_t item = n; item-- > 0;) {
    if (cell(item + 1, k, w) == cell(item, k, w)) continue;
    allocation.selected.push_back(item);
    k -= 1;
    w -= item_weight[item];
  }
  std::sort(allocation.selected.begin(), allocation.selected.end());
  return allocation;
}

}  // namespace

Allocation select_knapsack(const std::vector<Candidate>& candidates,
                           const ScoreWeights& weights, double budget,
                           std::size_t max_winners, double resolution,
                           const Penalties& penalties) {
  validate_inputs(candidates, weights, penalties);
  const std::vector<double> scores = all_scores(candidates, weights, penalties);
  return knapsack_core(
      candidates.size(), scores,
      [&](std::size_t i) { return candidates[i].bid; }, budget, max_winners,
      resolution);
}

Allocation select_knapsack(const CandidateBatch& batch,
                           const ScoreWeights& weights, double budget,
                           std::size_t max_winners, double resolution,
                           const Penalties& penalties) {
  validate_inputs(batch, weights, penalties);
  const std::span<const double> values = batch.values();
  const std::span<const double> bids = batch.bids();
  std::vector<double> scores(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    scores[i] = score(values[i], bids[i], weights, penalty_at(penalties, i));
  }
  return knapsack_core(
      batch.size(), scores, [&](std::size_t i) { return bids[i]; }, budget,
      max_winners, resolution);
}

Allocation select_greedy_concave(const std::vector<Candidate>& candidates,
                                 const ConcaveValuation& valuation,
                                 const ScoreWeights& weights,
                                 std::size_t max_winners,
                                 const Penalties& penalties) {
  validate_inputs(candidates, weights, penalties);
  // Greedy by marginal score: at each step add the candidate whose marginal
  // value (given the currently selected mass) minus weighted bid and penalty
  // is largest and positive. `value` is interpreted as the candidate's mass.
  std::vector<bool> taken(candidates.size(), false);
  Allocation allocation;
  double mass = 0.0;
  while (allocation.selected.size() < max_winners) {
    double best_gain = 0.0;
    std::size_t best_index = candidates.size();
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      if (taken[i]) continue;
      const double gain =
          weights.value_weight * valuation.marginal_value(mass, candidates[i].value) -
          weights.bid_weight * candidates[i].bid - penalty_at(penalties, i);
      if (gain > best_gain + 1e-12) {
        best_gain = gain;
        best_index = i;
      }
    }
    if (best_index == candidates.size()) break;
    taken[best_index] = true;
    allocation.selected.push_back(best_index);
    allocation.total_score += best_gain;
    mass += candidates[best_index].value;
  }
  std::sort(allocation.selected.begin(), allocation.selected.end());
  return allocation;
}

}  // namespace sfl::auction
