#include "auction/winner_determination.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <numeric>
#include <thread>

#include "auction/sharded_wdp.h"
#include "auction/valuation.h"
#include "util/config.h"
#include "util/require.h"
#include "util/simd.h"
#include "util/thread_pool.h"

namespace sfl::auction {

using sfl::util::require;

namespace {

void validate_weights_and_penalties(const ScoreWeights& weights,
                                    const Penalties& penalties,
                                    std::size_t num_candidates) {
  require(weights.bid_weight > 0.0,
          "bid weight must be > 0 (otherwise bids do not matter)");
  require(weights.value_weight >= 0.0, "value weight must be >= 0");
  require(penalties.empty() || penalties.size() == num_candidates,
          "penalties must be empty or one per candidate");
}

void validate_inputs(const std::vector<Candidate>& candidates,
                     const ScoreWeights& weights, const Penalties& penalties) {
  validate_weights_and_penalties(weights, penalties, candidates.size());
  for (const auto& c : candidates) {
    require(c.value >= 0.0, "candidate value must be >= 0");
    require(c.bid >= 0.0, "candidate bid must be >= 0");
    require(c.energy_cost > 0.0, "candidate energy cost must be > 0");
  }
}

void validate_inputs(const CandidateBatch& batch, const ScoreWeights& weights,
                     const Penalties& penalties) {
  validate_weights_and_penalties(weights, penalties, batch.size());
  // Per-candidate data was validated when the batch was constructed; the
  // O(n) re-scan only runs in debug builds or under SFL_VALIDATE=1.
  if (sfl::util::validate_mode_enabled()) validate_batch(batch);
}

[[nodiscard]] std::vector<double> all_scores(const std::vector<Candidate>& candidates,
                                             const ScoreWeights& weights,
                                             const Penalties& penalties) {
  std::vector<double> scores(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    scores[i] = score(candidates[i], weights, penalty_at(penalties, i));
  }
  return scores;
}

}  // namespace

Allocation top_m_from_scores(std::span<const double> scores,
                             std::span<const ClientId> ids,
                             std::size_t max_winners) {
  require(scores.size() == ids.size(), "scores and ids must be aligned");
  const std::size_t n = scores.size();

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  // Strict total order: score desc, then ClientId asc, then index asc. The
  // id tie-break makes the rule a function of the market rather than of the
  // slate's arrival order; the index fallback keeps the order total even
  // under duplicate ids, so nth_element picks a deterministic top set.
  const auto better = [&scores, &ids](std::size_t a, std::size_t b) {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    if (ids[a] != ids[b]) return ids[a] < ids[b];
    return a < b;
  };

  // Partial selection: partition the top m to the front in O(n) expected,
  // then order just that prefix — O(n + m log m) vs O(n log n) for a full
  // sort. At m = 10, N = 100k this is the dominant win on the hot path.
  const std::size_t prefix = std::min(max_winners, n);
  if (prefix < n) {
    std::nth_element(order.begin(),
                     order.begin() + static_cast<std::ptrdiff_t>(prefix),
                     order.end(), better);
  }
  std::sort(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(prefix),
            better);

  Allocation allocation;
  for (std::size_t k = 0; k < prefix; ++k) {
    const std::size_t index = order[k];
    if (scores[index] <= 0.0) break;  // prefix is sorted; the rest are <= 0 too
    allocation.selected.push_back(index);
    allocation.total_score += scores[index];
  }
  std::sort(allocation.selected.begin(), allocation.selected.end());
  return allocation;
}

Allocation select_top_m(const std::vector<Candidate>& candidates,
                        const ScoreWeights& weights, std::size_t max_winners,
                        const Penalties& penalties) {
  validate_inputs(candidates, weights, penalties);
  const std::vector<double> scores = all_scores(candidates, weights, penalties);
  std::vector<ClientId> ids(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    ids[i] = candidates[i].id;
  }
  return top_m_from_scores(scores, ids, max_winners);
}

Allocation select_top_m(const CandidateBatch& batch, const ScoreWeights& weights,
                        std::size_t max_winners, const Penalties& penalties) {
  validate_inputs(batch, weights, penalties);
  // SoA scoring: one streaming pass over contiguous arrays through the
  // shared SIMD kernels, which are bit-identical to the score() expression
  // (the dispatch test enforces this), so AoS and batch paths agree
  // bit-for-bit.
  std::vector<double> scores(batch.size());
  sfl::util::simd::score_span(batch.values().data(), batch.bids().data(),
                              penalties.empty() ? nullptr : penalties.data(),
                              scores.data(), batch.size(),
                              weights.value_weight, weights.bid_weight);
  return top_m_from_scores(scores, batch.ids(), max_winners);
}

const Allocation& select_top_m(const CandidateBatch& batch,
                               const ScoreWeights& weights,
                               std::size_t max_winners,
                               const Penalties& penalties,
                               RoundScratch& scratch) {
  // One serial shard of the sharded engine IS the scratch-based serial
  // path; keeping a single implementation keeps the two provably
  // bit-identical.
  static const ShardedWdp serial_engine{ShardedWdpConfig{.shards = 1}};
  return serial_engine.select_top_m(batch, weights, max_winners, penalties,
                                    scratch);
}

Allocation select_exhaustive(const std::vector<Candidate>& candidates,
                             const ScoreWeights& weights, std::size_t max_winners,
                             const Penalties& penalties) {
  validate_inputs(candidates, weights, penalties);
  require(candidates.size() <= 24, "exhaustive WDP is limited to 24 candidates");
  const std::vector<double> scores = all_scores(candidates, weights, penalties);

  const std::size_t n = candidates.size();
  const std::uint64_t subsets = std::uint64_t{1} << n;
  double best_score = 0.0;
  std::uint64_t best_mask = 0;
  for (std::uint64_t mask = 0; mask < subsets; ++mask) {
    if (static_cast<std::size_t>(std::popcount(mask)) > max_winners) continue;
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if ((mask >> i) & 1ULL) total += scores[i];
    }
    // Strict improvement keeps the lexicographically-smallest optimal mask,
    // matching select_top_m's index tie-break.
    if (total > best_score + 1e-12) {
      best_score = total;
      best_mask = mask;
    }
  }

  Allocation allocation;
  allocation.total_score = best_score;
  for (std::size_t i = 0; i < n; ++i) {
    if ((best_mask >> i) & 1ULL) allocation.selected.push_back(i);
  }
  return allocation;
}

namespace {

/// Lane count shared by the parallel oracle paths: 0 = auto (hardware
/// concurrency, capped so every lane keeps at least `min_span` work items),
/// 1 = serial, k = exactly k lanes — mirroring ShardedWdp's shard knob.
/// Never exceeds `work_items`, so no lane is empty.
[[nodiscard]] std::size_t oracle_lane_count(std::size_t threads,
                                            std::size_t work_items,
                                            std::size_t min_span) {
  if (work_items <= 1) return 1;
  std::size_t lanes = threads;
  if (threads == 0) {
    const std::size_t spans = std::max<std::size_t>(work_items / min_span, 1);
    lanes = std::min(sfl::util::shared_pool().thread_count(), spans);
  }
  return std::clamp<std::size_t>(lanes, 1, work_items);
}

/// Shared knapsack DP over precomputed scores and a bid accessor (AoS and
/// SoA overloads feed it the same values, so both produce identical
/// selections). With `lanes` > 1, every layer's (winners x budget) plane is
/// split across the shared pool — layer `item` reads only layer `item - 1`,
/// so the per-layer fork-join barrier is the only synchronization needed
/// and each cell's value is independent of the partition: bit-identical to
/// serial at any lane count.
template <typename BidAt>
Allocation knapsack_core(std::size_t n, const std::vector<double>& scores,
                         BidAt bid_at, double budget, std::size_t max_winners,
                         double resolution, std::size_t threads,
                         OracleScratch& scratch) {
  require(budget >= 0.0, "knapsack budget must be >= 0");
  require(resolution > 0.0, "knapsack resolution must be > 0");

  // Epsilon-robust discretization: a bid sitting exactly on the grid must
  // not round up a unit from floating-point division noise.
  const auto capacity =
      static_cast<std::size_t>(std::floor(budget / resolution + 1e-9));
  const std::size_t k_cap = std::min(max_winners, n);
  // capacity == 0 is NOT an early exit: zero-weight items (bid == 0) are
  // selectable at any budget, so the DP must still run over the w = 0
  // column when the budget is below one grid unit.
  if (k_cap == 0 || n == 0) return {};

  // Full DP table dp[item][k][w] = best score among the first `item`
  // candidates using <= k winners and <= w discretized budget. The full
  // table (rather than a rolling one) makes backtracking exact; memory is
  // (n+1)*(k_cap+1)*(capacity+1) doubles, so callers should keep
  // budget/resolution moderate (the scalability bench measures this).
  const std::size_t width = capacity + 1;
  const std::size_t plane = (k_cap + 1) * width;
  std::vector<double>& dp = scratch.dp;
  dp.assign((n + 1) * plane, 0.0);
  const auto cell = [&](std::size_t item, std::size_t k, std::size_t w) -> double& {
    return dp[item * plane + k * width + w];
  };

  std::vector<std::size_t>& item_weight = scratch.item_weight;
  item_weight.assign(n, capacity + 1);
  for (std::size_t item = 0; item < n; ++item) {
    // Ceil discretization: a bid strictly inside a grid cell charges the
    // whole cell, so the DP never under-counts spend — any selected set's
    // true bid sum is <= capacity * resolution <= budget + epsilon.
    item_weight[item] = static_cast<std::size_t>(
        std::ceil(bid_at(item) / resolution - 1e-9));
  }

  const std::size_t lanes =
      oracle_lane_count(threads, plane, /*min_span=*/2048);
  for (std::size_t item = 1; item <= n; ++item) {
    const std::size_t weight = item_weight[item - 1];
    const double gain = scores[item - 1];
    const auto fill_cells = [&](std::size_t begin, std::size_t end) {
      for (std::size_t idx = begin; idx < end; ++idx) {
        const std::size_t k = idx / width;
        const std::size_t w = idx % width;
        double best = cell(item - 1, k, w);
        if (k >= 1 && weight <= w && gain > 0.0) {
          best = std::max(best, cell(item - 1, k - 1, w - weight) + gain);
        }
        cell(item, k, w) = best;
      }
    };
    if (lanes <= 1) {
      fill_cells(0, plane);
    } else {
      sfl::util::shared_pool().parallel_for_chunks(
          plane, lanes,
          [&fill_cells](std::size_t, std::size_t begin, std::size_t end) {
            fill_cells(begin, end);
          });
    }
  }

  Allocation allocation;
  allocation.total_score = cell(n, k_cap, capacity);
  // Backtrack from the final cell.
  std::size_t k = k_cap;
  std::size_t w = capacity;
  for (std::size_t item = n; item-- > 0;) {
    if (cell(item + 1, k, w) == cell(item, k, w)) continue;
    allocation.selected.push_back(item);
    k -= 1;
    w -= item_weight[item];
  }
  std::sort(allocation.selected.begin(), allocation.selected.end());
  return allocation;
}

}  // namespace

Allocation select_knapsack(const std::vector<Candidate>& candidates,
                           const ScoreWeights& weights, double budget,
                           std::size_t max_winners, double resolution,
                           const Penalties& penalties) {
  OracleScratch scratch;
  return select_knapsack(candidates, weights, budget, max_winners, resolution,
                         penalties, /*threads=*/1, scratch);
}

Allocation select_knapsack(const CandidateBatch& batch,
                           const ScoreWeights& weights, double budget,
                           std::size_t max_winners, double resolution,
                           const Penalties& penalties) {
  OracleScratch scratch;
  return select_knapsack(batch, weights, budget, max_winners, resolution,
                         penalties, /*threads=*/1, scratch);
}

Allocation select_knapsack(const std::vector<Candidate>& candidates,
                           const ScoreWeights& weights, double budget,
                           std::size_t max_winners, double resolution,
                           const Penalties& penalties, std::size_t threads,
                           OracleScratch& scratch) {
  validate_inputs(candidates, weights, penalties);
  std::vector<double>& scores = scratch.scores;
  scores.resize(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    scores[i] = score(candidates[i], weights, penalty_at(penalties, i));
  }
  return knapsack_core(
      candidates.size(), scores,
      [&](std::size_t i) { return candidates[i].bid; }, budget, max_winners,
      resolution, threads, scratch);
}

Allocation select_knapsack(const CandidateBatch& batch,
                           const ScoreWeights& weights, double budget,
                           std::size_t max_winners, double resolution,
                           const Penalties& penalties, std::size_t threads,
                           OracleScratch& scratch) {
  validate_inputs(batch, weights, penalties);
  const std::span<const double> values = batch.values();
  const std::span<const double> bids = batch.bids();
  std::vector<double>& scores = scratch.scores;
  scores.resize(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    scores[i] = score(values[i], bids[i], weights, penalty_at(penalties, i));
  }
  return knapsack_core(
      batch.size(), scores, [&](std::size_t i) { return bids[i]; }, budget,
      max_winners, resolution, threads, scratch);
}

namespace {

/// The greedy scan's selection core, shared by the serial and parallel
/// entry points: each step computes every untaken candidate's marginal gain
/// (identical per-element expression regardless of partition) and picks the
/// maximum under the strict total order (gain desc, ClientId asc, index
/// asc) among candidates with gain > 1e-12. The per-lane argmax + serial
/// lane reduction finds the same unique maximum the serial scan does, so
/// every lane count selects the identical prefix.
///
/// The parallel path forks the pool ONCE for the whole selection (not once
/// per step): the team runs every step in lockstep, separated by a
/// sense-reversing spin barrier, with the executor owning chunk 0 doing the
/// serial lane reduction and state update between the two barrier phases of
/// each step. The team is capped at thread_count() + 1 (workers plus the
/// participating caller): each executor parks inside its chunk's barrier
/// loop until the scan finishes, so a larger team could strand an unclaimed
/// chunk behind an executor that will never return to the chunk cursor.
/// Capping is free for exactness — the argmax is partition-independent, so
/// any team size selects the identical prefix.
Allocation greedy_concave_core(const std::vector<Candidate>& candidates,
                               const ConcaveValuation& valuation,
                               const ScoreWeights& weights,
                               std::size_t max_winners,
                               const Penalties& penalties, std::size_t threads,
                               OracleScratch& scratch) {
  const std::size_t n = candidates.size();
  // Lane count is fixed across steps (candidates shrink but the scan stays
  // O(n): taken slots are skipped, not compacted).
  const std::size_t lanes = oracle_lane_count(threads, n, /*min_span=*/1024);
  const std::size_t team =
      std::min(lanes, sfl::util::shared_pool().thread_count() + 1);
  std::vector<double>& gains = scratch.gains;
  std::vector<unsigned char>& taken = scratch.taken;
  std::vector<std::size_t>& lane_best = scratch.lane_best;
  gains.assign(n, 0.0);
  taken.assign(n, 0);
  lane_best.assign(team, n);

  const auto better = [&](std::size_t a, std::size_t b) {
    if (gains[a] != gains[b]) return gains[a] > gains[b];
    if (candidates[a].id != candidates[b].id) {
      return candidates[a].id < candidates[b].id;
    }
    return a < b;
  };

  const auto gain_at = [&](std::size_t i, double mass) {
    return weights.value_weight *
               valuation.marginal_value(mass, candidates[i].value) -
           weights.bid_weight * candidates[i].bid - penalty_at(penalties, i);
  };

  Allocation allocation;
  double mass = 0.0;

  if (team <= 1 || max_winners == 0) {
    while (allocation.selected.size() < max_winners) {
      std::size_t best = n;
      for (std::size_t i = 0; i < n; ++i) {
        if (taken[i] != 0) continue;
        const double gain = gain_at(i, mass);
        gains[i] = gain;
        if (gain <= 1e-12) continue;
        if (best == n || better(i, best)) best = i;
      }
      if (best == n) break;
      taken[best] = 1;
      allocation.selected.push_back(best);
      allocation.total_score += gains[best];
      mass += candidates[best].value;
    }
    std::sort(allocation.selected.begin(), allocation.selected.end());
    return allocation;
  }

  // One fork, team-wide lockstep steps. All cross-chunk state (gains,
  // taken, lane_best, allocation, mass, done) is published by the
  // barrier's release/acquire pair, so the pool fn needs no per-element
  // atomics; the reservation below keeps the fn allocation-free.
  allocation.selected.reserve(std::min(max_winners, n));
  std::atomic<std::size_t> arrived{0};
  std::atomic<std::size_t> phase{0};
  bool done = false;
  const auto barrier_wait = [&] {
    // Sense-reversing central barrier: safe for reuse across steps because
    // the last arriver resets `arrived` BEFORE bumping `phase`, and nobody
    // enters the next episode until it observes the bump.
    const std::size_t my_phase = phase.load(std::memory_order_acquire);
    if (arrived.fetch_add(1, std::memory_order_acq_rel) + 1 == team) {
      arrived.store(0, std::memory_order_relaxed);
      phase.store(my_phase + 1, std::memory_order_release);
    } else {
      while (phase.load(std::memory_order_acquire) == my_phase) {
        std::this_thread::yield();
      }
    }
  };

  sfl::util::shared_pool().parallel_for_chunks(
      n, team, [&](std::size_t chunk, std::size_t begin, std::size_t end) {
        while (true) {
          std::size_t best = n;
          for (std::size_t i = begin; i < end; ++i) {
            if (taken[i] != 0) continue;
            const double gain = gain_at(i, mass);
            gains[i] = gain;
            if (gain <= 1e-12) continue;
            if (best == n || better(i, best)) best = i;
          }
          lane_best[chunk] = best;
          barrier_wait();  // every chunk's scan for this step is complete
          if (chunk == 0) {
            std::size_t best_index = n;
            for (std::size_t lane = 0; lane < team; ++lane) {
              const std::size_t lane_candidate = lane_best[lane];
              if (lane_candidate == n) continue;
              if (best_index == n || better(lane_candidate, best_index)) {
                best_index = lane_candidate;
              }
            }
            if (best_index == n) {
              done = true;
            } else {
              taken[best_index] = 1;
              allocation.selected.push_back(best_index);
              allocation.total_score += gains[best_index];
              mass += candidates[best_index].value;
              done = allocation.selected.size() >= max_winners;
            }
          }
          barrier_wait();  // chunk 0's reduction is visible to every chunk
          if (done) return;
        }
      });

  std::sort(allocation.selected.begin(), allocation.selected.end());
  return allocation;
}

}  // namespace

Allocation select_greedy_concave(const std::vector<Candidate>& candidates,
                                 const ConcaveValuation& valuation,
                                 const ScoreWeights& weights,
                                 std::size_t max_winners,
                                 const Penalties& penalties) {
  OracleScratch scratch;
  return select_greedy_concave(candidates, valuation, weights, max_winners,
                               penalties, /*threads=*/1, scratch);
}

Allocation select_greedy_concave(const std::vector<Candidate>& candidates,
                                 const ConcaveValuation& valuation,
                                 const ScoreWeights& weights,
                                 std::size_t max_winners,
                                 const Penalties& penalties,
                                 std::size_t threads, OracleScratch& scratch) {
  validate_inputs(candidates, weights, penalties);
  return greedy_concave_core(candidates, valuation, weights, max_winners,
                             penalties, threads, scratch);
}

}  // namespace sfl::auction
