#include "auction/adaptive_price.h"

#include <algorithm>
#include <cmath>

#include "auction/baselines.h"
#include "auction/payments.h"
#include "util/require.h"

namespace sfl::auction {

using sfl::util::require;

AdaptivePostedPriceMechanism::AdaptivePostedPriceMechanism(
    const AdaptivePriceConfig& config)
    : config_(config), price_(config.initial_price) {
  require(config.initial_price > 0.0, "initial price must be > 0");
  require(config.step > 0.0 && config.step < 1.0, "step must be in (0, 1)");
  require(config.min_price > 0.0, "min price must be > 0");
  require(config.max_price >= config.min_price,
          "max price must be >= min price");
  price_ = std::clamp(price_, config_.min_price, config_.max_price);
}

MechanismResult AdaptivePostedPriceMechanism::run_round(
    const std::vector<Candidate>& candidates, const RoundContext& context) {
  return run_round(CandidateBatch::from_aos(candidates), context);
}

MechanismResult AdaptivePostedPriceMechanism::run_round(
    const CandidateBatch& batch, const RoundContext& context) {
  require(std::isfinite(context.per_round_budget) && context.per_round_budget > 0.0,
          "adaptive price needs a finite positive per-round budget");
  last_budget_ = context.per_round_budget;
  round_open_ = true;  // re-arms the one-price-update-per-round guard

  Allocation allocation;
  allocation.selected = posted_price_winners(batch.values(), batch.bids(),
                                             price_, context.max_winners);
  std::vector<double> payments(allocation.selected.size(), price_);
  return make_result(batch, allocation, std::move(payments));
}

void AdaptivePostedPriceMechanism::observe(const RoundObservation& observation) {
  if (last_budget_ <= 0.0) return;  // run_round not called yet
  // Idempotent per round: settle() forwards here, so a caller reporting
  // through both settle() and observe() for one auction round must not
  // step the price twice — whatever round stamps the two reports carry.
  // With the round closed (a report already applied since the last
  // run_round), only a genuine empty-round report (no winners, no spend —
  // the orchestrator's empty-slate path, which never calls run_round) may
  // still step the price; any substantive closed-round report is the
  // duplicate half of a double report and is dropped.
  if (!round_open_ &&
      (!observation.winners.empty() || observation.total_payment != 0.0)) {
    return;
  }
  round_open_ = false;
  if (observation.total_payment > last_budget_) {
    price_ *= 1.0 - config_.step;
  } else if (observation.total_payment < last_budget_) {
    price_ *= 1.0 + config_.step;
  }
  price_ = std::clamp(price_, config_.min_price, config_.max_price);
}

}  // namespace sfl::auction
