// Adaptive posted-price mechanism (online-learning baseline).
//
// Like FixedPriceMechanism, but the price tracks the long-term budget with
// a multiplicative update after each round: spend above B-bar lowers the
// price, spend below raises it. Posted prices are trivially truthful each
// round (payments are bid-independent); the interesting question — answered
// in the comparisons — is how much welfare simple price adaptation gives up
// versus queue-driven auction selection.
#pragma once

#include "auction/mechanism.h"

namespace sfl::auction {

struct AdaptivePriceConfig {
  double initial_price = 1.0;  ///< > 0
  double step = 0.05;          ///< multiplicative step in (0, 1)
  double min_price = 0.01;     ///< > 0
  double max_price = 100.0;    ///< >= min_price
};

class AdaptivePostedPriceMechanism final : public Mechanism {
 public:
  explicit AdaptivePostedPriceMechanism(const AdaptivePriceConfig& config);

  [[nodiscard]] std::string name() const override { return "adaptive-price"; }
  [[nodiscard]] MechanismResult run_round(const std::vector<Candidate>& candidates,
                                          const RoundContext& context) override;
  /// Batch-native posted-price round (the real implementation; the AoS
  /// overload gathers and delegates).
  [[nodiscard]] MechanismResult run_round(const CandidateBatch& batch,
                                          const RoundContext& context) override;
  void observe(const RoundObservation& observation) override;
  [[nodiscard]] bool is_truthful() const noexcept override { return true; }

  [[nodiscard]] double current_price() const noexcept { return price_; }

 private:
  AdaptivePriceConfig config_;
  double price_;
  double last_budget_ = 0.0;  ///< B-bar seen in the last run_round
  /// Per-round idempotency guard: settle() routes into observe(), so a
  /// double report for one auction round must not apply the price update
  /// twice. run_round opens the round; the first observation closes it; a
  /// closed-round observation is dropped unless it reports an empty round
  /// (no winners, zero payment — the no-auction path, which has no
  /// run_round to re-open the guard).
  bool round_open_ = true;
};

}  // namespace sfl::auction
