// Random auction instances for property tests and the property benches.
#pragma once

#include <vector>

#include "auction/types.h"
#include "util/rng.h"

namespace sfl::auction {

struct RandomInstanceSpec {
  std::size_t num_candidates = 10;
  double value_lo = 0.5;
  double value_hi = 5.0;
  double bid_lo = 0.1;
  double bid_hi = 3.0;
  double penalty_hi = 0.0;  ///< penalties ~ U[0, penalty_hi]; 0 disables
};

struct RandomInstance {
  std::vector<Candidate> candidates;
  Penalties penalties;  ///< empty when spec.penalty_hi == 0
};

/// Draws candidate values/bids/penalties uniformly from the spec's ranges;
/// ids are 0..n-1. Continuous draws make exact score ties measure-zero, so
/// tie-breaking does not cloud truthfulness checks.
[[nodiscard]] RandomInstance make_random_instance(const RandomInstanceSpec& spec,
                                                  sfl::util::Rng& rng);

/// Random affine-maximizer weights with bid_weight >= value_weight >= 0.1
/// (the shape the LTO mechanism produces: V and V+Q).
[[nodiscard]] ScoreWeights make_random_weights(sfl::util::Rng& rng);

}  // namespace sfl::auction
