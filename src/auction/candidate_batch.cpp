#include "auction/candidate_batch.h"

#include "util/require.h"

namespace sfl::auction {

using sfl::util::require;

CandidateBatch CandidateBatch::from_aos(std::span<const Candidate> candidates) {
  CandidateBatch batch;
  batch.reserve(candidates.size());
  for (const Candidate& candidate : candidates) {
    batch.push_back(candidate);
  }
  return batch;
}

void CandidateBatch::reserve(std::size_t capacity) {
  ids_.reserve(capacity);
  values_.reserve(capacity);
  bids_.reserve(capacity);
  energy_costs_.reserve(capacity);
}

void CandidateBatch::clear() noexcept {
  ids_.clear();
  values_.clear();
  bids_.clear();
  energy_costs_.clear();
}

void CandidateBatch::push_back(const Candidate& candidate) {
  emplace(candidate.id, candidate.value, candidate.bid, candidate.energy_cost);
}

void CandidateBatch::emplace(ClientId id, double value, double bid,
                             double energy_cost) {
  // Validate-at-construction: one branch triple per element here buys
  // scan-free solver calls every round the slate is reused.
  require(value >= 0.0, "candidate value must be >= 0");
  require(bid >= 0.0, "candidate bid must be >= 0");
  require(energy_cost > 0.0, "candidate energy cost must be > 0");
  ids_.push_back(id);
  values_.push_back(value);
  bids_.push_back(bid);
  energy_costs_.push_back(energy_cost);
}

std::vector<Candidate> CandidateBatch::to_aos() const {
  std::vector<Candidate> candidates;
  candidates.reserve(size());
  for (std::size_t i = 0; i < size(); ++i) {
    candidates.push_back(at(i));
  }
  return candidates;
}

void validate_batch(const CandidateBatch& batch) {
  for (const double v : batch.values()) {
    require(v >= 0.0, "candidate value must be >= 0");
  }
  for (const double b : batch.bids()) {
    require(b >= 0.0, "candidate bid must be >= 0");
  }
  for (const double e : batch.energy_costs()) {
    require(e > 0.0, "candidate energy cost must be > 0");
  }
}

}  // namespace sfl::auction
