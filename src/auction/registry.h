// MechanismRegistry: string-keyed construction of every auction rule.
//
// Benches, examples, and the experiment runner used to each carry a private
// name -> mechanism if-chain; this registry is the single source of truth
// for mechanism names. A factory receives one MechanismConfig — common
// market facts (client count, budget, seed) plus per-mechanism option
// structs — and returns a ready Mechanism. describe() lists every key with
// a one-line summary, so front-ends can enumerate rules without linking
// against their headers.
//
// Built-in keys (see registry.cpp): lto-vcg, lto-vcg-sharded, lto-vcg-async,
// lto-vcg-dist, lto-vcg-dist-pipe, lto-vcg-dist-hedge, lto-vcg-unpaced,
// myopic-vcg, pay-as-bid,
// fixed-price, adaptive-price, random-stipend, proportional-share,
// first-best-oracle, budgeted-oracle, budgeted-oracle-par, greedy-concave,
// greedy-concave-par, myopic-vcg-ext, myopic-vcg-ext-par. New mechanisms
// register under a new
// key; downstream
// sharding/async/distribution work addresses rules by key only. Execution
// variants (same rule, bit-identical results, different topology) register
// through add_variant so the property harness covers them automatically.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "auction/mechanism.h"
#include "auction/round_scratch.h"

namespace sfl::auction {

/// Options consumed by the "lto-vcg" / "lto-vcg-unpaced" factories.
struct LtoVcgOptions {
  /// Lyapunov penalty weight V > 0.
  double v_weight = 10.0;
  /// Explicit per-client pacing rates r_i; wins over pacing_rate when
  /// non-empty. Ignored by "lto-vcg-unpaced".
  std::vector<double> energy_rates{};
  /// Uniform pacing rate applied to all num_clients clients when
  /// energy_rates is empty and the value is > 0. Ignored by
  /// "lto-vcg-unpaced".
  double pacing_rate = 0.0;
  /// Optional time-varying budget profile (see LtoVcgConfig).
  std::vector<double> budget_schedule{};
  /// E12 ablations: VCG-externality payments instead of critical values,
  /// and the winning-bid queue arrival proxy instead of realized payments.
  bool vcg_externality_payments = false;
  bool bid_proxy_queue_arrival = false;
  /// WDP shard count, consumed by the "lto-vcg-sharded" key: 0 = auto
  /// (hardware concurrency), 1 = serial (bit-identical to "lto-vcg"),
  /// k > 1 = exactly k contiguous batch spans. Any shard count produces
  /// identical allocations and payments; only wall time changes.
  std::size_t shards = 0;
  /// Shard-worker count, consumed by the "lto-vcg-dist" and
  /// "lto-vcg-dist-pipe" keys: the round's winner determination runs on
  /// the DistributedWdp coordinator over an in-process loopback transport
  /// with this many workers (0 picks the key's default of 2).
  /// Bit-identical allocations and payments for any worker count; only
  /// execution topology changes.
  std::size_t dist_workers = 0;
  /// Round-pipeline depth, consumed by the "lto-vcg-dist-pipe" key: up to
  /// this many auction rounds stay in flight over the shard transport at
  /// once, each on its own scratch lane (0 picks the key's default of 2;
  /// 1 degenerates to lto-vcg-dist). Any depth produces bit-identical
  /// trajectories; depth only overlaps straggler waits.
  std::size_t dist_pipeline_depth = 0;
  /// Hedged dispatch on the distributed keys ("lto-vcg-dist",
  /// "lto-vcg-dist-pipe"): adaptive per-worker deadlines re-dispatch
  /// laggard shards to the next live worker in rendezvous order before the
  /// full receive timeout, first valid reply wins. Trajectories are
  /// bit-identical either way; hedging only changes tail latency under
  /// stragglers and membership churn. The "lto-vcg-dist-hedge" key forces
  /// this on.
  bool hedge = true;
  /// Externally-owned RoundScratch shared across mechanisms (nullptr =
  /// each mechanism owns a private one). Multi-mechanism comparison runs
  /// hand every LTO-family mechanism the same warmed scratch so only the
  /// first one pays the buffer-growth allocations; safe whenever no two
  /// mechanisms run a round concurrently.
  sfl::auction::RoundScratch* shared_scratch = nullptr;
  /// Streamed settlement: wrap the built mechanism in the async settlement
  /// pipeline (core::AsyncSettlementMechanism), so settle() enqueues onto
  /// the shared thread pool and every run_round entry point drains the
  /// queue first. Results are bit-identical to synchronous settlement; only
  /// when the caller's round loop overlaps work with the pending
  /// settlement does wall time change. The "lto-vcg-async" key forces this
  /// on; the knob extends it to any lto-vcg* key except
  /// "lto-vcg-dist-pipe", which ignores it (pipelined retirement settles
  /// synchronously — each settle validates the next round's speculative
  /// dispatch).
  bool async_settle = false;
  /// Thread lanes for the vcg_externality_payments ablation's per-winner
  /// leave-one-out re-solves (0 = auto, 1 = serial, k = exactly k lanes).
  /// Bit-identical payments at every count; ignored under the default
  /// critical-value rule.
  std::size_t oracle_threads = 1;
};

/// Options consumed by the "fixed-price" factory.
struct FixedPriceOptions {
  double price = 1.0;
};

/// Options consumed by the "random-stipend" factory.
struct RandomStipendOptions {
  double stipend = 1.0;
};

/// Options consumed by the "adaptive-price" factory (mirrors
/// AdaptivePriceConfig without pulling in the mechanism header).
struct AdaptivePriceOptions {
  double initial_price = 1.0;  ///< > 0
  double step = 0.05;          ///< multiplicative step in (0, 1)
  double min_price = 0.01;     ///< > 0
  double max_price = 100.0;    ///< >= min_price
};

/// Options consumed by the "budgeted-oracle" factory.
struct BudgetedOracleOptions {
  /// Knapsack DP money grid.
  double resolution = 0.05;
};

/// Options consumed by the parallel-oracle keys ("budgeted-oracle-par",
/// "greedy-concave"/"greedy-concave-par", "myopic-vcg-ext"/
/// "myopic-vcg-ext-par"): the shared-pool lane knob for the expensive
/// comparison oracles. Every thread count produces bit-identical
/// allocations and payments (the property harness sweeps this); threads
/// only changes wall time.
struct OracleOptions {
  /// 0 = auto (hardware concurrency, span-capped), 1 = serial, k = exactly
  /// k lanes. The "-par" variant keys consume this; the serial canonical
  /// keys pin threads = 1.
  std::size_t threads = 0;
  /// ConcaveValuation scale for the greedy-concave keys.
  double greedy_scale = 20.0;
};

/// Everything a factory may need. Callers fill the common fields plus the
/// option struct(s) for the mechanisms they intend to build; unused options
/// are ignored.
struct MechanismConfig {
  /// Number of clients in the market (needed by uniform pacing).
  std::size_t num_clients = 0;
  /// Long-term per-round payment budget B-bar.
  double per_round_budget = 5.0;
  /// Seed for randomized rules (random-stipend).
  std::uint64_t seed = 42;

  LtoVcgOptions lto{};
  FixedPriceOptions fixed_price{};
  AdaptivePriceOptions adaptive_price{};
  RandomStipendOptions random_stipend{};
  BudgetedOracleOptions budgeted_oracle{};
  OracleOptions oracle{};
};

/// One registry entry's metadata.
struct MechanismInfo {
  std::string name;
  std::string description;
  /// Non-empty when this key is an execution variant of another key: same
  /// auction rule, same bit-identical results on every input, different
  /// execution topology (threads, async settlement, distributed workers).
  /// The property harness sweeps trajectory equality over every key whose
  /// variant_of names the same canonical rule — registering a new variant
  /// here is ALL it takes to be covered (no hand-maintained test list).
  std::string variant_of;
};

class MechanismRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<Mechanism>(const MechanismConfig&)>;

  /// The process-wide registry, pre-populated with the built-in rules.
  [[nodiscard]] static MechanismRegistry& global();

  /// Registers a factory under `name`. Throws std::invalid_argument on a
  /// duplicate key or an empty factory.
  void add(std::string name, std::string description, Factory factory);

  /// Registers an execution variant of `variant_of` (same rule, same
  /// results, different topology); the property harness's trajectory sweep
  /// picks it up automatically.
  void add_variant(std::string name, std::string variant_of,
                   std::string description, Factory factory);

  [[nodiscard]] bool contains(const std::string& name) const noexcept;

  /// Builds the named mechanism. Throws std::invalid_argument for unknown
  /// names, with the known keys in the message.
  [[nodiscard]] std::unique_ptr<Mechanism> build(
      const std::string& name, const MechanismConfig& config) const;

  /// Every registered key with its one-line description, in registration
  /// order (built-ins first, in their canonical comparison order).
  [[nodiscard]] std::vector<MechanismInfo> describe() const;

  /// Just the keys, in registration order.
  [[nodiscard]] std::vector<std::string> names() const;

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

 private:
  struct Entry {
    MechanismInfo info;
    Factory factory;
  };
  std::vector<Entry> entries_;

  [[nodiscard]] const Entry* find(const std::string& name) const noexcept;
};

/// Convenience: MechanismRegistry::global().build(name, config).
[[nodiscard]] std::unique_ptr<Mechanism> build_mechanism(
    const std::string& name, const MechanismConfig& config);

}  // namespace sfl::auction
