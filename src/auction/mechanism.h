// Round-level mechanism interface (v2).
//
// A mechanism is the full auction rule: given the round's candidates (ids,
// public values, bids), it picks winners and payments. Candidates arrive
// either as the classic AoS vector or as a batched SoA CandidateBatch (the
// production hot path); a default adapter keeps AoS-only mechanisms working
// under the batch entry point and vice versa.
//
// After the round settles in the real world (payments cleared, dropouts
// known), the caller reports back via `settle(RoundSettlement)`: per-winner
// realized payments, winning bids, energy costs, and dropout flags. Stateful
// mechanisms (the long-term online VCG in sfl::core) update their virtual
// queues there. The older `observe(RoundObservation)` — which only carried
// the round's total payment — survives as a deprecated shim for existing
// callers and is routed into settle() by default.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "auction/candidate_batch.h"
#include "auction/types.h"

namespace sfl::auction {

/// Realized outcome of a round as reported by the legacy observe() API.
/// Deprecated: lossy (no per-winner payments, bids, or dropout flags).
/// New code reports RoundSettlement through settle().
struct RoundObservation {
  std::size_t round = 0;
  double total_payment = 0.0;
  std::vector<ClientId> winners;
};

/// One auction winner's settled outcome.
struct WinnerSettlement {
  ClientId client = 0;
  double bid = 0.0;          ///< the winning bid (drives bid-proxy queues)
  double payment = 0.0;      ///< realized payment; 0 when the winner dropped
  double energy_cost = 1.0;  ///< e_i the win would drain
  bool dropped = false;      ///< failed to deliver (unpaid, did not train)
};

/// Full realized outcome of one round, reported to the mechanism after
/// payments settle. `winners` covers every auction winner including dropped
/// ones, so stateful rules can decide which flows (payments, bids, energy)
/// each queue should see.
struct RoundSettlement {
  std::size_t round = 0;
  /// Sum of realized payments (delivered winners only).
  double total_payment = 0.0;
  std::vector<WinnerSettlement> winners;

  /// Sum of winning bids over all auction winners, delivered or not — the
  /// drift objective's spend proxy.
  [[nodiscard]] double total_bid() const noexcept {
    double sum = 0.0;
    for (const WinnerSettlement& w : winners) sum += w.bid;
    return sum;
  }

  [[nodiscard]] std::size_t delivered_count() const noexcept {
    std::size_t count = 0;
    for (const WinnerSettlement& w : winners) {
      if (!w.dropped) ++count;
    }
    return count;
  }
};

/// How a mechanism's settle() calls may be scheduled by an asynchronous
/// settlement executor (core::AsyncSettler).
enum class SettlementOrdering {
  /// settle() must see settlements one at a time, in round order: the
  /// mechanism's post-round state depends on the order of application
  /// (virtual queues with max(0, .) clamps, clamped price updates). The
  /// safe default.
  kRoundOrder,
  /// settle() outcomes are invariant under reordering AND merging of
  /// settlements (concatenated winners, summed totals): an async executor
  /// may coalesce several queued rounds into one settle() call. Stateless
  /// rules whose settle() is a no-op declare this.
  kCommutative,
};

class Mechanism {
 public:
  virtual ~Mechanism() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Selects winners and payments for one round. Must be deterministic given
  /// (candidates, context, internal state) unless the rule is explicitly
  /// randomized (RandomSelectionMechanism).
  [[nodiscard]] virtual MechanismResult run_round(
      const std::vector<Candidate>& candidates, const RoundContext& context) = 0;

  /// Batched SoA entry point. The default adapter scatters the batch back to
  /// AoS and calls the vector overload, so existing mechanisms work
  /// unchanged; hot-path mechanisms override this to stay in SoA form.
  /// Overrides must produce results identical to the AoS path.
  [[nodiscard]] virtual MechanismResult run_round(const CandidateBatch& batch,
                                                  const RoundContext& context);

  /// Steady-state entry point of the zero-allocation round pipeline: the
  /// caller owns `out` and reuses it across rounds, so a mechanism override
  /// can fill out.winners/out.payments within their existing capacity and
  /// allocate nothing after warm-up. Results must be identical to
  /// run_round(batch, context); the default adapter simply assigns its
  /// result into `out`.
  virtual void run_round_into(const CandidateBatch& batch,
                              const RoundContext& context,
                              MechanismResult& out);

  /// Reports the round's realized outcome. Default: synthesizes a legacy
  /// RoundObservation (round, total payment, delivered winners) and forwards
  /// to observe(), so mechanisms that only implement the old hook keep
  /// working. Stateful mechanisms override this to read the full settlement.
  virtual void settle(const RoundSettlement& settlement);

  /// Deprecated lossy predecessor of settle(); default no-op. Kept so
  /// pre-settlement callers and tests compile unchanged.
  virtual void observe(const RoundObservation& observation);

  /// Declares how an async executor may schedule this rule's settle()
  /// calls. Default is the conservative strict round order; rules whose
  /// settle() commutes (stateless baselines) override to kCommutative and
  /// may have queued settlements merged into one call.
  [[nodiscard]] virtual SettlementOrdering settlement_ordering() const noexcept {
    return SettlementOrdering::kRoundOrder;
  }

  /// Settlement barrier: returns only once every settlement reported so far
  /// has been applied to mechanism state. Synchronous mechanisms apply
  /// inside settle(), so the default is a no-op; asynchronous decorators
  /// (core::AsyncSettlementMechanism) override it to drain their queue.
  /// Callers must flush before reading settlement-derived state (queue
  /// backlogs, adapted prices) off a possibly-async mechanism.
  virtual void flush() {}

  /// The mechanism implementing the auction rule itself, unwrapping any
  /// execution decorators (async settlement). Diagnostics that downcast to
  /// a concrete rule (orchestrator reading LTO queue backlogs) go through
  /// here so they keep working when the rule is wrapped.
  [[nodiscard]] virtual Mechanism* underlying() noexcept { return this; }
  [[nodiscard]] const Mechanism* underlying() const noexcept {
    return const_cast<Mechanism*>(this)->underlying();
  }

  /// True when bidding one's true cost is a dominant strategy under this
  /// rule (used by the property benches to label expectations).
  [[nodiscard]] virtual bool is_truthful() const noexcept = 0;
};

}  // namespace sfl::auction
