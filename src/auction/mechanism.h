// Round-level mechanism interface.
//
// A mechanism is the full auction rule: given the round's candidates (ids,
// public values, bids), it picks winners and payments. Stateful mechanisms
// (the long-term online VCG in sfl::core) additionally observe realized
// outcomes via `observe` to update their internal queues.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "auction/types.h"

namespace sfl::auction {

/// Realized outcome of a round, reported back to stateful mechanisms after
/// payments settle.
struct RoundObservation {
  std::size_t round = 0;
  double total_payment = 0.0;
  std::vector<ClientId> winners;
};

class Mechanism {
 public:
  virtual ~Mechanism() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Selects winners and payments for one round. Must be deterministic given
  /// (candidates, context, internal state) unless the rule is explicitly
  /// randomized (RandomSelectionMechanism).
  [[nodiscard]] virtual MechanismResult run_round(
      const std::vector<Candidate>& candidates, const RoundContext& context) = 0;

  /// Default no-op; stateful mechanisms update virtual queues here.
  virtual void observe(const RoundObservation& observation);

  /// True when bidding one's true cost is a dominant strategy under this
  /// rule (used by the property benches to label expectations).
  [[nodiscard]] virtual bool is_truthful() const noexcept = 0;
};

}  // namespace sfl::auction
