// Truthful payment rules for the affine-maximizer procurement auction.
//
// Setting: single-parameter (each client's private information is its scalar
// cost). The allocation rule select_top_m is monotone non-increasing in each
// bid, so by Myerson's lemma the *critical-value* payment — the highest bid
// at which the client would still win — makes truthful bidding a dominant
// strategy and guarantees individual rationality (payment >= bid).
//
// The weighted-VCG externality payment,
//   p_i = b_i + (OPT(all) - OPT(without i)) / bid_weight,
// coincides with the critical value for the modular objective; both are
// implemented and their equality is enforced by tests. Payments are in money
// units (not score units): score-space externalities are divided by
// bid_weight = V + Q(t).
//
// Each rule has an AoS entry point and an SoA (CandidateBatch) overload; the
// batch overloads stream over contiguous arrays and are the pair of the
// batched select_top_m on the production path.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "auction/candidate_batch.h"
#include "auction/round_scratch.h"
#include "auction/types.h"

namespace sfl::auction {

/// Critical-value payments for the top-m allocation; returned vector is
/// aligned with `allocation.selected`. Requires the allocation to have been
/// produced by select_top_m on the same inputs.
[[nodiscard]] std::vector<double> critical_payments(
    const std::vector<Candidate>& candidates, const ScoreWeights& weights,
    std::size_t max_winners, const Allocation& allocation,
    const Penalties& penalties = {});

/// Batched SoA variant; identical results to the AoS overload.
[[nodiscard]] std::vector<double> critical_payments(
    const CandidateBatch& batch, const ScoreWeights& weights,
    std::size_t max_winners, const Allocation& allocation,
    const Penalties& penalties = {});

/// Scratch-reusing variant: prices scratch.allocation (which must have been
/// produced by the scratch-based select_top_m on the same batch, weights,
/// and penalties) into scratch.payments without re-scanning the batch — the
/// payment threshold is read off the merged selection order. Identical
/// payments to the allocating overloads; zero heap allocations at steady
/// state. Returns scratch.payments.
const std::vector<double>& critical_payments(const CandidateBatch& batch,
                                             const ScoreWeights& weights,
                                             std::size_t max_winners,
                                             const Penalties& penalties,
                                             RoundScratch& scratch);

/// A winner-determination solver (same signature as select_top_m).
using WdpSolver = std::function<Allocation(
    const std::vector<Candidate>&, const ScoreWeights&, std::size_t,
    const Penalties&)>;

/// Weighted-VCG externality payments computed by re-solving the WDP with
/// each winner removed. Exactly truthful when `solver` is exact; aligned
/// with `allocation.selected`.
[[nodiscard]] std::vector<double> vcg_payments(
    const std::vector<Candidate>& candidates, const ScoreWeights& weights,
    std::size_t max_winners, const Allocation& allocation, const WdpSolver& solver,
    const Penalties& penalties = {});

/// Parallel scratch-reusing VCG externality payments: the m leave-one-out
/// re-solves are independent, so winners are partitioned across the shared
/// pool (threads: 0 = auto, 1 = serial — no pool touch, k = exactly k
/// lanes), each lane building its reduced slate in a per-lane scratch
/// buffer. Bit-identical payments to the serial overload at every thread
/// count (each winner's payment is a pure function of its own re-solve).
/// `solver` must be safe to call concurrently from pool workers and must
/// NOT re-enter the shared pool (the serial select_top_m qualifies).
/// Steady-state calls are allocation-free up to the solver's own internals.
[[nodiscard]] std::vector<double> vcg_payments(
    const std::vector<Candidate>& candidates, const ScoreWeights& weights,
    std::size_t max_winners, const Allocation& allocation, const WdpSolver& solver,
    const Penalties& penalties, std::size_t threads, OracleScratch& scratch);

/// Packages an allocation + aligned payments into a MechanismResult keyed by
/// client ids.
[[nodiscard]] MechanismResult make_result(const std::vector<Candidate>& candidates,
                                          const Allocation& allocation,
                                          std::vector<double> payments);

/// Batch variant of make_result.
[[nodiscard]] MechanismResult make_result(const CandidateBatch& batch,
                                          const Allocation& allocation,
                                          std::vector<double> payments);

}  // namespace sfl::auction
