#include "auction/market_batch.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace sfl::auction {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw std::invalid_argument("MarketBatch: " + what);
}

[[noreturn]] void fail_market(std::size_t k, const std::string& what) {
  fail("market " + std::to_string(k) + ": " + what);
}

}  // namespace

void MarketBatch::clear() noexcept {
  external_ = nullptr;
  ids_.clear();
  values_.clear();
  bids_.clear();
  energy_costs_.clear();
  penalties_.clear();
  any_penalties_ = false;
  exclusive_ = false;
  markets_.clear();
}

void MarketBatch::reserve(std::size_t markets, std::size_t rows) {
  markets_.reserve(markets);
  ids_.reserve(rows);
  values_.reserve(rows);
  bids_.reserve(rows);
  energy_costs_.reserve(rows);
}

std::size_t MarketBatch::total_rows() const noexcept {
  return view_mode() ? external_->size() : ids_.size();
}

std::span<const ClientId> MarketBatch::ids() const noexcept {
  return view_mode() ? external_->ids() : std::span<const ClientId>(ids_);
}

std::span<const double> MarketBatch::values() const noexcept {
  return view_mode() ? external_->values() : std::span<const double>(values_);
}

std::span<const double> MarketBatch::bids() const noexcept {
  return view_mode() ? external_->bids() : std::span<const double>(bids_);
}

std::span<const double> MarketBatch::energy_costs() const noexcept {
  return view_mode() ? external_->energy_costs()
                     : std::span<const double>(energy_costs_);
}

void MarketBatch::append_market(const CandidateBatch& batch,
                                std::size_t max_winners,
                                const ScoreWeights& weights,
                                std::span<const double> penalties) {
  if (view_mode()) {
    fail("cannot append owned markets to a view-mode batch "
         "(use add_market_view)");
  }
  if (!penalties.empty() && penalties.size() != batch.size()) {
    fail("penalties must be empty or one per row");
  }
  MarketView view;
  view.offset = ids_.size();
  view.count = batch.size();
  view.max_winners = max_winners;
  view.weights = weights;

  const auto batch_ids = batch.ids();
  const auto batch_values = batch.values();
  const auto batch_bids = batch.bids();
  const auto batch_energy = batch.energy_costs();
  ids_.insert(ids_.end(), batch_ids.begin(), batch_ids.end());
  values_.insert(values_.end(), batch_values.begin(), batch_values.end());
  bids_.insert(bids_.end(), batch_bids.begin(), batch_bids.end());
  energy_costs_.insert(energy_costs_.end(), batch_energy.begin(),
                       batch_energy.end());

  if (!penalties.empty()) {
    // First market with penalties backfills zeros for every earlier row, so
    // the arena stays row-aligned with the candidate arrays.
    penalties_.resize(view.offset, 0.0);
    penalties_.insert(penalties_.end(), penalties.begin(), penalties.end());
    any_penalties_ = true;
    view.has_penalties = true;
  } else if (any_penalties_) {
    penalties_.resize(ids_.size(), 0.0);
  }
  markets_.push_back(view);
}

void MarketBatch::bind_arena(const CandidateBatch& arena) {
  if (!markets_.empty() || !ids_.empty()) {
    fail("cannot bind an external arena after owned markets were appended");
  }
  external_ = &arena;
}

void MarketBatch::add_market_view(std::size_t offset, std::size_t count,
                                  std::size_t max_winners,
                                  const ScoreWeights& weights,
                                  std::span<const double> penalties) {
  if (!view_mode()) fail("add_market_view requires bind_arena first");
  const std::size_t arena_rows = external_->size();
  if (count > arena_rows || offset > arena_rows - count) {
    fail("market span outside the bound arena");
  }
  if (!penalties.empty() && penalties.size() != count) {
    fail("penalties must be empty or one per row");
  }
  MarketView view;
  view.offset = offset;
  view.count = count;
  view.max_winners = max_winners;
  view.weights = weights;
  if (!penalties.empty()) {
    if (penalties_.size() < arena_rows) penalties_.resize(arena_rows, 0.0);
    std::copy(penalties.begin(), penalties.end(),
              penalties_.begin() + static_cast<std::ptrdiff_t>(offset));
    any_penalties_ = true;
    view.has_penalties = true;
  }
  markets_.push_back(view);
}

void MarketBatch::validate() const {
  const std::size_t rows = total_rows();
  std::size_t watermark = 0;  // end of the previous market's span
  for (std::size_t k = 0; k < markets_.size(); ++k) {
    const MarketView& view = markets_[k];
    if (!std::isfinite(view.weights.value_weight) ||
        !std::isfinite(view.weights.bid_weight)) {
      fail_market(k, "weights must be finite");
    }
    if (view.weights.bid_weight <= 0.0) {
      fail_market(k, "bid weight must be > 0 (otherwise bids do not matter)");
    }
    if (view.weights.value_weight < 0.0) {
      fail_market(k, "value weight must be >= 0");
    }
    if (view.count > rows || view.offset > rows - view.count) {
      fail_market(k, "span outside the arena");
    }
    // Markets share ONE scores arena, written concurrently by lanes, so
    // spans must be ordered and disjoint — an overlap would be a data race,
    // not just a semantic oddity.
    if (view.offset < watermark) {
      fail_market(k, "span overlaps or precedes the previous market");
    }
    watermark = view.offset + view.count;
    if (view.has_penalties && penalties_.size() < view.offset + view.count) {
      fail_market(k, "penalty arena does not cover the span");
    }
  }
}

void MarketBatchResult::reset(const MarketBatch& batch) {
  const std::size_t markets = batch.market_count();
  slots_.resize(markets);
  std::size_t total = 0;
  for (std::size_t k = 0; k < markets; ++k) {
    const MarketView& view = batch.market(k);
    Slot& slot = slots_[k];
    slot.offset = total;
    slot.capacity = std::min(view.max_winners, view.count);
    slot.count = 0;
    slot.total_score = 0.0;
    total += slot.capacity;
  }
  selected_.assign(total, 0);
  payments_.assign(total, 0.0);
}

}  // namespace sfl::auction
