#include "auction/sharded_wdp.h"

#include <algorithm>
#include <exception>
#include <numeric>
#include <thread>

#include "util/config.h"
#include "util/require.h"
#include "util/simd.h"

namespace sfl::auction {

using sfl::util::check_invariant;
using sfl::util::require;

namespace {

/// Auto mode only: keep spans big enough that fork-join overhead stays
/// negligible; explicit shard counts are honored exactly so tests can force
/// any merge topology on any machine.
constexpr std::size_t kMinAutoSpan = 4096;

/// Fused cross-market exclusive clearing (MarketBatch::exclusive()).
///
/// The serial reference (WdpEngine::run_rounds) sorts ALL covered rows
/// under the global greedy order and accepts each row iff its market has
/// capacity and its client is still unassigned. The fused shape recovers
/// the identical sequence from per-market sorted orders: phase 1 scores
/// and FULLY sorts every market's span in parallel (no top-(m+1) pruning —
/// exclusivity can reach arbitrarily deep into a market when its best rows
/// lose their clients elsewhere); phase 2 merges the per-market cursors
/// through a heap on the calling thread, which visits rows in exactly the
/// global order (the comparator is a strict total order, so the merge is
/// deterministic), accepting under the same capacity + client-unassigned
/// test and dropping a market's cursor once it fills (its remaining rows
/// could never be accepted, and the serial scan never marks their clients
/// either); phase 3 prices every market in parallel against the FINAL
/// assignment — a row passed over for a full market may have won elsewhere
/// later, so thresholds cannot be interleaved with the merge. Bit-for-bit
/// equality with the serial reference at every lane count is pinned by the
/// exclusivity property harness.
void run_exclusive_fused(const MarketBatch& batch, MarketBatchResult& result,
                         RoundScratch& scratch, sfl::util::ThreadPool* pool,
                         std::size_t lanes) {
  const std::size_t total = batch.total_rows();
  const std::size_t market_count = batch.market_count();
  const std::span<const ClientId> ids = batch.ids();
  const std::span<const double> values = batch.values();
  const std::span<const double> bids = batch.bids();

  scratch.scores.resize(total);
  scratch.order.resize(total);
  double* const scores = scratch.scores.data();
  std::size_t* const order = scratch.order.data();

  // The serial global greedy order: score desc, ClientId asc, global row
  // index asc (markets are ordered and disjoint, so the index tie-break is
  // (market index, row) lexicographically).
  const auto better = [scores, ids](std::size_t a, std::size_t b) {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    if (ids[a] != ids[b]) return ids[a] < ids[b];
    return a < b;
  };

  // --- phase 1: score + sort every market span (parallel) ---
  const auto prepare_market = [&](std::size_t k) {
    const MarketView& view = batch.market(k);
    if (view.count == 0) return;
    sfl::util::simd::score_span(
        values.data() + view.offset, bids.data() + view.offset,
        batch.market_penalties(k), scores + view.offset, view.count,
        view.weights.value_weight, view.weights.bid_weight);
    std::iota(order + view.offset, order + view.offset + view.count,
              view.offset);
    std::sort(order + view.offset, order + view.offset + view.count, better);
  };
  if (lanes <= 1 || pool == nullptr) {
    for (std::size_t k = 0; k < market_count; ++k) prepare_market(k);
  } else {
    pool->parallel_for_chunks(market_count, lanes,
                              [&](std::size_t, std::size_t begin,
                                  std::size_t end) {
                                for (std::size_t k = begin; k < end; ++k) {
                                  prepare_market(k);
                                }
                              });
  }

  // --- assignment set (serial) ---
  scratch.exclusive_clients.clear();
  for (std::size_t k = 0; k < market_count; ++k) {
    const MarketView& view = batch.market(k);
    for (std::size_t i = view.offset; i < view.offset + view.count; ++i) {
      scratch.exclusive_clients.push_back(ids[i]);
    }
  }
  std::sort(scratch.exclusive_clients.begin(), scratch.exclusive_clients.end());
  scratch.exclusive_clients.erase(
      std::unique(scratch.exclusive_clients.begin(),
                  scratch.exclusive_clients.end()),
      scratch.exclusive_clients.end());
  scratch.exclusive_assigned.assign(scratch.exclusive_clients.size(), 0);
  const auto rank_of = [&scratch](ClientId id) {
    return static_cast<std::size_t>(
        std::lower_bound(scratch.exclusive_clients.begin(),
                         scratch.exclusive_clients.end(), id) -
        scratch.exclusive_clients.begin());
  };

  // --- phase 2: k-way merge greedy (serial) ---
  scratch.exclusive_cursor.assign(market_count, 0);
  scratch.exclusive_heap.clear();
  const auto cursor_row = [&](std::size_t k) {
    return order[batch.market(k).offset + scratch.exclusive_cursor[k]];
  };
  // std::*_heap keeps the comp-largest element on top; "largest" here must
  // be the market whose current row is globally best.
  const auto heap_less = [&](std::size_t ka, std::size_t kb) {
    return better(cursor_row(kb), cursor_row(ka));
  };
  for (std::size_t k = 0; k < market_count; ++k) {
    if (batch.market(k).count == 0) continue;
    if (result.slot(k).capacity == 0) continue;  // can never accept
    scratch.exclusive_heap.push_back(k);
  }
  std::make_heap(scratch.exclusive_heap.begin(), scratch.exclusive_heap.end(),
                 heap_less);

  while (!scratch.exclusive_heap.empty()) {
    const std::size_t k = scratch.exclusive_heap.front();
    const std::size_t row = cursor_row(k);
    if (scores[row] <= 0.0) break;  // heap top is the best remaining row
    std::pop_heap(scratch.exclusive_heap.begin(), scratch.exclusive_heap.end(),
                  heap_less);
    scratch.exclusive_heap.pop_back();

    MarketBatchResult::Slot& slot = result.slot(k);
    const std::size_t rank = rank_of(ids[row]);
    if (scratch.exclusive_assigned[rank] == 0) {
      scratch.exclusive_assigned[rank] = 1;
      result.selected_storage(k)[slot.count++] = row;
      // Acceptance-order accumulation — the FP addition order is shared
      // with the serial reference.
      slot.total_score += scores[row];
    }
    ++scratch.exclusive_cursor[k];
    if (scratch.exclusive_cursor[k] < batch.market(k).count &&
        slot.count < slot.capacity) {
      scratch.exclusive_heap.push_back(k);
      std::push_heap(scratch.exclusive_heap.begin(),
                     scratch.exclusive_heap.end(), heap_less);
    }
  }

  // --- phase 3: thresholds + payments against the final assignment
  // (parallel; check_invariant may throw, so lanes carry exception_ptrs) ---
  const auto price_market = [&](std::size_t k) {
    const MarketView& view = batch.market(k);
    MarketBatchResult::Slot& slot = result.slot(k);
    if (slot.count == 0) return;
    const std::span<std::size_t> selected = result.selected_storage(k);
    const std::span<double> payments = result.payments_storage(k);
    std::sort(selected.begin(),
              selected.begin() + static_cast<std::ptrdiff_t>(slot.count));

    double threshold = 0.0;  // max() against 0 is the clamp
    for (std::size_t i = view.offset; i < view.offset + view.count; ++i) {
      if (scores[i] <= threshold) continue;
      if (scratch.exclusive_assigned[rank_of(ids[i])] != 0) continue;
      threshold = scores[i];
    }

    const double vw = view.weights.value_weight;
    const double bw = view.weights.bid_weight;
    const double* const penalties = batch.market_penalties(k);
    for (std::size_t w = 0; w < slot.count; ++w) {
      const std::size_t row = selected[w];
      const double penalty =
          penalties == nullptr ? 0.0 : penalties[row - view.offset];
      const double critical_bid = (vw * values[row] - penalty - threshold) / bw;
      check_invariant(critical_bid >= bids[row] - 1e-9,
                      "critical payment below the winning bid");
      payments[w] = std::max(critical_bid, bids[row]);
    }
    for (std::size_t w = 0; w < slot.count; ++w) selected[w] -= view.offset;
  };
  if (lanes <= 1 || pool == nullptr) {
    for (std::size_t k = 0; k < market_count; ++k) price_market(k);
    return;
  }
  std::vector<std::exception_ptr> lane_errors(lanes);
  pool->parallel_for_chunks(
      market_count, lanes,
      [&](std::size_t lane, std::size_t begin, std::size_t end) {
        try {
          for (std::size_t k = begin; k < end; ++k) price_market(k);
        } catch (...) {
          lane_errors[lane] = std::current_exception();
        }
      });
  for (const std::exception_ptr& error : lane_errors) {
    if (error) std::rethrow_exception(error);
  }
}

}  // namespace

ShardedWdp::ShardedWdp(ShardedWdpConfig config, sfl::util::ThreadPool* pool)
    : config_(config), pool_(pool) {}

std::size_t ShardedWdp::effective_shards(std::size_t n) const {
  if (n <= 1) return 1;
  std::size_t shards = config_.shards;
  if (shards == 0) {
    // hardware_concurrency() is a sysconf call — cache it, this runs every
    // round.
    static const std::size_t hardware_threads = [] {
      const std::size_t count = std::thread::hardware_concurrency();
      return count == 0 ? std::size_t{1} : count;
    }();
    // Do not split tiny rounds across cores in auto mode.
    shards = std::min(hardware_threads,
                      std::max<std::size_t>(n / kMinAutoSpan, 1));
  }
  return std::min(shards, n);
}

const Allocation& ShardedWdp::select_top_m(const CandidateBatch& batch,
                                           const ScoreWeights& weights,
                                           std::size_t max_winners,
                                           const Penalties& penalties,
                                           RoundScratch& scratch) const {
  require(weights.bid_weight > 0.0,
          "bid weight must be > 0 (otherwise bids do not matter)");
  require(weights.value_weight >= 0.0, "value weight must be >= 0");
  require(penalties.empty() || penalties.size() == batch.size(),
          "penalties must be empty or one per candidate");
  if (sfl::util::validate_mode_enabled()) validate_batch(batch);

  Allocation& allocation = scratch.allocation;
  allocation.selected.clear();
  allocation.total_score = 0.0;
  scratch.survivors.clear();
  const std::size_t n = batch.size();
  if (n == 0) {
    scratch.scores.clear();
    scratch.order.clear();
    return allocation;
  }

  scratch.scores.resize(n);
  scratch.order.resize(n);
  const std::size_t shards = effective_shards(n);

  const std::span<const double> values = batch.values();
  const std::span<const double> bids = batch.bids();
  const std::span<const ClientId> ids = batch.ids();
  double* const scores = scratch.scores.data();
  std::size_t* const order = scratch.order.data();

  // Strict total order shared with the serial path: score desc, ClientId
  // asc, index asc. The global index tie-break makes the merged order a
  // function of the batch, not of the shard layout.
  const auto better = [scores, ids](std::size_t a, std::size_t b) {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    if (ids[a] != ids[b]) return ids[a] < ids[b];
    return a < b;
  };

  // Each shard keeps its local top-(m+1): the +1 slot guarantees the best
  // global loser — the payment threshold — survives the merge even when all
  // m winners share its shard.
  const std::size_t local_cap = std::min(max_winners + 1, n);
  const double* const penalty_data =
      penalties.empty() ? nullptr : penalties.data();
  const auto score_and_select = [&](std::size_t /*shard*/, std::size_t begin,
                                    std::size_t end) {
    // SoA scoring through the runtime-dispatched SIMD kernels, whose every
    // lane evaluates the one shared score() expression tree — so every
    // shard layout and kernel produces bit-identical scores to the serial
    // overloads (pinned by tests/util/simd_test.cpp).
    sfl::util::simd::score_span(
        values.data() + begin, bids.data() + begin,
        penalty_data == nullptr ? nullptr : penalty_data + begin,
        scores + begin, end - begin, weights.value_weight, weights.bid_weight);
    std::iota(order + begin, order + end, begin);
    const std::size_t span = end - begin;
    const std::size_t keep = std::min(local_cap, span);
    if (keep < span) {
      std::nth_element(order + begin, order + begin + keep, order + end,
                       better);
    }
  };

  if (shards == 1) {
    score_and_select(0, 0, n);
  } else {
    // Resolve the pool at the use site (no lazily-cached pointer): engines
    // may legally run concurrent rounds with separate scratches, and
    // shared_pool()'s magic static is the only thread-safe init here.
    sfl::util::ThreadPool& pool =
        pool_ != nullptr ? *pool_ : sfl::util::shared_pool();
    pool.parallel_for_chunks(n, shards, score_and_select);
  }

  // Merge: gather each shard's local winners, order them under the serial
  // comparator, and take the global top-m positive-score prefix.
  for (std::size_t shard = 0; shard < shards; ++shard) {
    const auto [begin, end] =
        sfl::util::ThreadPool::chunk_range(n, shards, shard);
    const std::size_t keep = std::min(local_cap, end - begin);
    scratch.survivors.insert(scratch.survivors.end(), order + begin,
                             order + begin + keep);
  }
  std::sort(scratch.survivors.begin(), scratch.survivors.end(), better);

  const std::size_t prefix = std::min(max_winners, scratch.survivors.size());
  for (std::size_t k = 0; k < prefix; ++k) {
    const std::size_t index = scratch.survivors[k];
    if (scores[index] <= 0.0) break;  // merged order; the rest are <= 0 too
    allocation.selected.push_back(index);
    allocation.total_score += scores[index];
  }
  std::sort(allocation.selected.begin(), allocation.selected.end());
  return allocation;
}

const std::vector<double>& ShardedWdp::critical_payments(
    const CandidateBatch& batch, const ScoreWeights& weights,
    std::size_t max_winners, const Penalties& penalties,
    RoundScratch& scratch) const {
  const Allocation& allocation = scratch.allocation;
  require(allocation.selected.size() <= max_winners,
          "allocation exceeds the winner cap");
  scratch.payments.clear();

  // Threshold = the best non-selected score, clamped at 0 — identical to
  // the serial best-loser scan. Every non-selected candidate's score is
  // bounded by the first non-selected survivor's (shard top-(m+1) keeps it),
  // so the merged order answers the scan in O(1).
  const bool slate_full = allocation.selected.size() == max_winners;
  double threshold = 0.0;
  if (slate_full && scratch.survivors.size() > max_winners) {
    threshold =
        std::max(0.0, scratch.scores[scratch.survivors[max_winners]]);
  }

  const std::span<const double> values = batch.values();
  const std::span<const double> bids = batch.bids();
  for (const std::size_t raw_index : allocation.selected) {
    const std::size_t index =
        sfl::util::checked_index(raw_index, batch.size(), "winner");
    // phi_i(b) = vw*v_i - bw*b - pen_i stays above `threshold` while
    // b < (vw*v_i - pen_i - threshold)/bw: that boundary is the payment.
    const double critical_bid =
        (weights.value_weight * values[index] - penalty_at(penalties, index) -
         threshold) /
        weights.bid_weight;
    check_invariant(critical_bid >= bids[index] - 1e-9,
                    "critical payment below the winning bid");
    scratch.payments.push_back(std::max(critical_bid, bids[index]));
  }
  return scratch.payments;
}

void ShardedWdp::run_round(const CandidateBatch& batch,
                           const ScoreWeights& weights,
                           std::size_t max_winners, const Penalties& penalties,
                           RoundScratch& scratch) const {
  // Inputs are validated exactly once per round, in select_top_m; payments
  // reuse the same validated slate and merged order.
  select_top_m(batch, weights, max_winners, penalties, scratch);
  critical_payments(batch, weights, max_winners, penalties, scratch);
}

void ShardedWdp::run_rounds(const MarketBatch& batch, MarketBatchResult& result,
                            RoundScratch& scratch) const {
  // Exception-atomicity: every descriptor is checked before any market is
  // scored, and the result is only laid out once the batch is known good.
  batch.validate();
  result.reset(batch);
  const std::size_t market_count = batch.market_count();
  if (market_count == 0) return;

  if (batch.exclusive()) {
    const std::size_t lanes = std::min(
        effective_shards(std::max<std::size_t>(batch.total_rows(), 1)),
        market_count);
    sfl::util::ThreadPool& pool =
        pool_ != nullptr ? *pool_ : sfl::util::shared_pool();
    try {
      run_exclusive_fused(batch, result, scratch, &pool, lanes);
    } catch (...) {
      result.reset(batch);
      throw;
    }
    return;
  }

  const std::size_t total = batch.total_rows();
  scratch.scores.resize(total);
  scratch.order.resize(total);

  const std::span<const ClientId> ids = batch.ids();
  const std::span<const double> values = batch.values();
  const std::span<const double> bids = batch.bids();
  double* const scores = scratch.scores.data();
  std::size_t* const order = scratch.order.data();

  // One market = the full serial single-shard round on its arena span:
  // SIMD-score the span, nth_element to the local top-(m+1), sort those
  // survivors under the serial total order, take the positive top-m prefix,
  // price at the best-loser threshold. Market spans are disjoint
  // (validate()), so lanes never touch the same scores/order rows, and the
  // per-market math is step-for-step the select_top_m + critical_payments
  // pair with shards = 1 — which the sharded/distributed engines are in
  // turn bit-identical to, closing the mega-batch equality contract.
  const auto clear_market = [&](std::size_t k) {
    const MarketView& view = batch.market(k);
    if (view.count == 0) return;  // slot stays zeroed from reset()
    const std::size_t off = view.offset;
    const std::size_t n = view.count;
    const std::size_t m = view.max_winners;
    const double vw = view.weights.value_weight;
    const double bw = view.weights.bid_weight;
    const double* const penalties = batch.market_penalties(k);

    sfl::util::simd::score_span(values.data() + off, bids.data() + off,
                                penalties, scores + off, n, vw, bw);

    // Serial strict total order: score desc, ClientId asc, index asc (the
    // indices are global, but within one market they share `off`, so the
    // tie-break orders exactly like the market-local one).
    const auto better = [scores, ids](std::size_t a, std::size_t b) {
      if (scores[a] != scores[b]) return scores[a] > scores[b];
      if (ids[a] != ids[b]) return ids[a] < ids[b];
      return a < b;
    };
    std::iota(order + off, order + off + n, off);
    const std::size_t local_cap = std::min(m + 1, n);
    if (local_cap < n) {
      std::nth_element(order + off, order + off + local_cap, order + off + n,
                       better);
    }
    std::sort(order + off, order + off + local_cap, better);

    const std::span<std::size_t> selected = result.selected_storage(k);
    const std::span<double> payments = result.payments_storage(k);
    const std::size_t prefix = std::min(m, local_cap);
    std::size_t wcount = 0;
    double total_score = 0.0;
    for (std::size_t j = 0; j < prefix; ++j) {
      const std::size_t index = order[off + j];
      if (scores[index] <= 0.0) break;  // sorted; the rest are <= 0 too
      selected[wcount++] = index;
      // Accumulated in survivor order BEFORE the ascending sort — the FP
      // addition order is part of the bit-exactness contract.
      total_score += scores[index];
    }
    std::sort(selected.begin(),
              selected.begin() + static_cast<std::ptrdiff_t>(wcount));

    // Threshold = best non-selected score, clamped at 0; the +1 survivor
    // slot guarantees it is present whenever the slate is full.
    double threshold = 0.0;
    if (wcount == m && local_cap > m) {
      threshold = std::max(0.0, scores[order[off + m]]);
    }
    for (std::size_t w = 0; w < wcount; ++w) {
      const std::size_t index = selected[w];
      const double penalty =
          penalties == nullptr ? 0.0 : penalties[index - off];
      const double critical_bid =
          (vw * values[index] - penalty - threshold) / bw;
      check_invariant(critical_bid >= bids[index] - 1e-9,
                      "critical payment below the winning bid");
      payments[w] = std::max(critical_bid, bids[index]);
    }
    for (std::size_t w = 0; w < wcount; ++w) selected[w] -= off;

    MarketBatchResult::Slot& slot = result.slot(k);
    slot.count = wcount;
    slot.total_score = total_score;
  };

  // Lanes partition MARKETS, not rows: explicit shard configs are honored
  // (capped by the market count), auto sizes by total rows so tiny batches
  // stay inline.
  const std::size_t lanes =
      std::min(effective_shards(std::max<std::size_t>(total, 1)), market_count);
  if (lanes <= 1) {
    // Same exception-atomicity as the parallel join below: a market's
    // invariant failure re-zeroes the arena before escaping.
    try {
      for (std::size_t k = 0; k < market_count; ++k) clear_market(k);
    } catch (...) {
      result.reset(batch);
      throw;
    }
    return;
  }

  // The pool's fork-join fn must not throw; per-market invariant failures
  // ride out on per-lane exception_ptrs and rethrow after the join — after
  // re-zeroing the arena, so a failed batch never exposes the markets other
  // lanes finished writing.
  std::vector<std::exception_ptr> lane_errors(lanes);
  sfl::util::ThreadPool& pool =
      pool_ != nullptr ? *pool_ : sfl::util::shared_pool();
  pool.parallel_for_chunks(
      market_count, lanes,
      [&](std::size_t lane, std::size_t begin, std::size_t end) {
        try {
          for (std::size_t k = begin; k < end; ++k) clear_market(k);
        } catch (...) {
          lane_errors[lane] = std::current_exception();
        }
      });
  for (const std::exception_ptr& error : lane_errors) {
    if (error) {
      result.reset(batch);
      std::rethrow_exception(error);
    }
  }
}

}  // namespace sfl::auction
