// Server-side valuation of client participation.
//
// The default (modular) valuation follows the paper class: the server values
// client i at v_i = scale * d_i * q_i where d_i is data size and q_i the
// estimated data quality in [0, 1]. Modularity is what makes the exact
// cardinality-capped WDP and exact truthful payments possible.
//
// The concave valuation models diminishing returns of adding data within one
// round — value of a set S is g(sum_{i in S} d_i q_i) with g(x) =
// scale*log(1+x). It is used in the E12 ablation; its WDP is solved greedily.
#pragma once

#include <cstddef>
#include <vector>

#include "auction/types.h"

namespace sfl::auction {

/// v_i = scale * data_size_i * quality_i.
class ModularValuation {
 public:
  explicit ModularValuation(double scale);

  [[nodiscard]] double client_value(double data_size, double quality) const;
  [[nodiscard]] double scale() const noexcept { return scale_; }

 private:
  double scale_;
};

/// Value of a set = scale * log(1 + sum of member masses).
class ConcaveValuation {
 public:
  explicit ConcaveValuation(double scale);

  /// g(total_mass).
  [[nodiscard]] double set_value(double total_mass) const;

  /// g(total + added) - g(total): marginal value of adding `added` mass.
  [[nodiscard]] double marginal_value(double total_mass, double added_mass) const;

  [[nodiscard]] double scale() const noexcept { return scale_; }

 private:
  double scale_;
};

/// Social welfare of an allocation at the *reported* costs:
/// sum_{i in S} (v_i - b_i). Penalties do not enter welfare.
[[nodiscard]] double reported_welfare(const std::vector<Candidate>& candidates,
                                      const Allocation& allocation);

/// Social welfare at externally supplied true costs (aligned with
/// candidates); used for post-hoc accounting when clients misreport.
[[nodiscard]] double true_welfare(const std::vector<Candidate>& candidates,
                                  const std::vector<double>& true_costs,
                                  const Allocation& allocation);

}  // namespace sfl::auction
