// Baseline mechanisms the paper class compares against.
//
// Each baseline isolates one failure mode the long-term online VCG fixes:
//  - MyopicVcgMechanism: truthful and welfare-greedy per round, but
//    budget-blind — overspends early and violates the long-term budget.
//  - PayAsBidGreedyMechanism: pays winners their bids; not truthful, so
//    strategic clients overbid and welfare degrades (E4).
//  - FixedPriceMechanism: truthful posted price; inefficient (pays the same
//    for cheap and expensive clients, misses high-value expensive ones).
//  - RandomSelectionMechanism: classic FedAvg sampling with a fixed stipend;
//    ignores both value and cost.
//  - FirstBestOracleMechanism: clairvoyant benchmark — sees true costs (fed
//    to it as bids), selects welfare-optimally and pays cost exactly. Not a
//    real mechanism (violates IR margins and truthfulness); used as the
//    regret reference.
//  - ProportionalShareMechanism: Singer-style budget-feasible truthful
//    mechanism; guarantees per-round payments <= budget at some welfare loss.
//
// Every baseline is batch-native: the CandidateBatch overload of run_round
// is the real implementation (streaming over the SoA arrays), and the AoS
// overload gathers into a batch and delegates — so the whole mechanism
// roster runs the hot SoA path with no adapter round-trip, and both entry
// points agree bit-for-bit by construction.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "auction/mechanism.h"
#include "auction/round_scratch.h"
#include "auction/valuation.h"
#include "util/rng.h"

namespace sfl::auction {

/// Posted-price winners shared by the fixed and adaptive posted-price
/// rules: accepting clients (bid <= price), highest value first (index asc
/// on ties), capped at m, reported in index order.
[[nodiscard]] std::vector<std::size_t> posted_price_winners(
    std::span<const double> values, std::span<const double> bids, double price,
    std::size_t max_winners);

/// Per-round VCG: top-m by (value - bid), critical payments, no budget
/// awareness.
class MyopicVcgMechanism final : public Mechanism {
 public:
  MyopicVcgMechanism() = default;

  [[nodiscard]] std::string name() const override { return "myopic-vcg"; }
  [[nodiscard]] MechanismResult run_round(const std::vector<Candidate>& candidates,
                                          const RoundContext& context) override;
  [[nodiscard]] MechanismResult run_round(const CandidateBatch& batch,
                                          const RoundContext& context) override;
  [[nodiscard]] bool is_truthful() const noexcept override { return true; }
  /// Stateless rule: settle() is a no-op, so settlements commute and an
  /// async executor may merge them.
  [[nodiscard]] SettlementOrdering settlement_ordering() const noexcept override {
    return SettlementOrdering::kCommutative;
  }
};

/// Top-m by (value - bid), pay-as-bid. Strategically manipulable.
class PayAsBidGreedyMechanism final : public Mechanism {
 public:
  PayAsBidGreedyMechanism() = default;

  [[nodiscard]] std::string name() const override { return "pay-as-bid"; }
  [[nodiscard]] MechanismResult run_round(const std::vector<Candidate>& candidates,
                                          const RoundContext& context) override;
  [[nodiscard]] MechanismResult run_round(const CandidateBatch& batch,
                                          const RoundContext& context) override;
  [[nodiscard]] bool is_truthful() const noexcept override { return false; }
  /// Stateless rule: settle() is a no-op, so settlements commute and an
  /// async executor may merge them.
  [[nodiscard]] SettlementOrdering settlement_ordering() const noexcept override {
    return SettlementOrdering::kCommutative;
  }
};

/// Posted price: clients with bid <= price win (highest value first, capped
/// at m), each paid exactly `price`.
class FixedPriceMechanism final : public Mechanism {
 public:
  explicit FixedPriceMechanism(double price);

  [[nodiscard]] std::string name() const override { return "fixed-price"; }
  [[nodiscard]] MechanismResult run_round(const std::vector<Candidate>& candidates,
                                          const RoundContext& context) override;
  [[nodiscard]] MechanismResult run_round(const CandidateBatch& batch,
                                          const RoundContext& context) override;
  [[nodiscard]] bool is_truthful() const noexcept override { return true; }
  /// Stateless rule: settle() is a no-op, so settlements commute and an
  /// async executor may merge them.
  [[nodiscard]] SettlementOrdering settlement_ordering() const noexcept override {
    return SettlementOrdering::kCommutative;
  }

  [[nodiscard]] double price() const noexcept { return price_; }

 private:
  double price_;
};

/// Uniform random m clients, each paid a fixed stipend (bid-independent, so
/// trivially truthful — and trivially wasteful).
class RandomSelectionMechanism final : public Mechanism {
 public:
  RandomSelectionMechanism(double stipend, std::uint64_t seed);

  [[nodiscard]] std::string name() const override { return "random-stipend"; }
  [[nodiscard]] MechanismResult run_round(const std::vector<Candidate>& candidates,
                                          const RoundContext& context) override;
  [[nodiscard]] MechanismResult run_round(const CandidateBatch& batch,
                                          const RoundContext& context) override;
  [[nodiscard]] bool is_truthful() const noexcept override { return true; }
  /// Stateless rule: settle() is a no-op, so settlements commute and an
  /// async executor may merge them.
  [[nodiscard]] SettlementOrdering settlement_ordering() const noexcept override {
    return SettlementOrdering::kCommutative;
  }

 private:
  double stipend_;
  sfl::util::Rng rng_;
};

/// Clairvoyant first-best: expects bids to *be* the true costs, selects
/// top-m by (value - cost) and pays cost. Regret/upper-bound reference only.
class FirstBestOracleMechanism final : public Mechanism {
 public:
  FirstBestOracleMechanism() = default;

  [[nodiscard]] std::string name() const override { return "first-best-oracle"; }
  [[nodiscard]] MechanismResult run_round(const std::vector<Candidate>& candidates,
                                          const RoundContext& context) override;
  [[nodiscard]] MechanismResult run_round(const CandidateBatch& batch,
                                          const RoundContext& context) override;
  [[nodiscard]] bool is_truthful() const noexcept override { return false; }
  /// Stateless rule: settle() is a no-op, so settlements commute and an
  /// async executor may merge them.
  [[nodiscard]] SettlementOrdering settlement_ordering() const noexcept override {
    return SettlementOrdering::kCommutative;
  }
};

/// Clairvoyant *budget-feasible* benchmark: sees true costs (as bids),
/// solves the per-round knapsack max sum(value - cost) s.t. sum(cost) <=
/// per_round_budget and |S| <= m, pays cost. Satisfies the long-term budget
/// by construction; the gap between this and LTO-VCG is the information
/// rent a truthful mechanism must pay (E10).
class BudgetedOracleMechanism final : public Mechanism {
 public:
  /// `resolution` is the knapsack DP money grid; `threads` parallelizes
  /// each DP layer over the shared pool (0 = auto, 1 = serial, k = exactly
  /// k lanes) with bit-identical selections at every count.
  explicit BudgetedOracleMechanism(double resolution = 0.05,
                                   std::size_t threads = 1);

  [[nodiscard]] std::string name() const override { return "budgeted-oracle"; }
  [[nodiscard]] MechanismResult run_round(const std::vector<Candidate>& candidates,
                                          const RoundContext& context) override;
  [[nodiscard]] MechanismResult run_round(const CandidateBatch& batch,
                                          const RoundContext& context) override;
  [[nodiscard]] bool is_truthful() const noexcept override { return false; }
  /// Stateless rule: settle() is a no-op, so settlements commute and an
  /// async executor may merge them.
  [[nodiscard]] SettlementOrdering settlement_ordering() const noexcept override {
    return SettlementOrdering::kCommutative;
  }

 private:
  double resolution_;
  std::size_t threads_;
  OracleScratch scratch_;
};

/// Concave-valuation greedy (E12 ablation rule as a standalone mechanism):
/// winners are the greedy prefix under diminishing returns of total
/// selected mass (see select_greedy_concave), paid their bids. Not
/// truthful (pay-as-bid on a submodular objective); the approximation
/// reference for the concave WDP.
class GreedyConcaveMechanism final : public Mechanism {
 public:
  /// `scale` is the concave valuation's scale (g(x) = scale*log(1+x));
  /// `threads` parallelizes each greedy scan over the shared pool (0 =
  /// auto, 1 = serial, k = exactly k lanes) with bit-identical selections
  /// at every count.
  explicit GreedyConcaveMechanism(double scale = 20.0, std::size_t threads = 1);

  [[nodiscard]] std::string name() const override { return "greedy-concave"; }
  [[nodiscard]] MechanismResult run_round(const std::vector<Candidate>& candidates,
                                          const RoundContext& context) override;
  [[nodiscard]] MechanismResult run_round(const CandidateBatch& batch,
                                          const RoundContext& context) override;
  [[nodiscard]] bool is_truthful() const noexcept override { return false; }
  /// Stateless rule: settle() is a no-op, so settlements commute and an
  /// async executor may merge them.
  [[nodiscard]] SettlementOrdering settlement_ordering() const noexcept override {
    return SettlementOrdering::kCommutative;
  }

 private:
  ConcaveValuation valuation_;
  std::size_t threads_;
  OracleScratch scratch_;
};

/// Per-round VCG with explicit externality payments: the same top-m
/// allocation as myopic-vcg, but each winner's payment is computed by the
/// leave-one-out re-solve (bid + externality) instead of the closed-form
/// critical value. The two rules coincide for the modular objective, so
/// this mechanism is the m-times-costlier reference the payment-equality
/// tests compare against — and the natural host for the parallel VCG
/// payment loop.
class MyopicVcgExtMechanism final : public Mechanism {
 public:
  /// `threads` parallelizes the per-winner leave-one-out solves over the
  /// shared pool (0 = auto, 1 = serial, k = exactly k lanes) with
  /// bit-identical payments at every count.
  explicit MyopicVcgExtMechanism(std::size_t threads = 1);

  [[nodiscard]] std::string name() const override { return "myopic-vcg-ext"; }
  [[nodiscard]] MechanismResult run_round(const std::vector<Candidate>& candidates,
                                          const RoundContext& context) override;
  [[nodiscard]] MechanismResult run_round(const CandidateBatch& batch,
                                          const RoundContext& context) override;
  [[nodiscard]] bool is_truthful() const noexcept override { return true; }
  /// Stateless rule: settle() is a no-op, so settlements commute and an
  /// async executor may merge them.
  [[nodiscard]] SettlementOrdering settlement_ordering() const noexcept override {
    return SettlementOrdering::kCommutative;
  }

 private:
  std::size_t threads_;
  OracleScratch scratch_;
};

/// Budget-feasible proportional share (Singer 2010 style): winners are the
/// largest prefix of the bid/value order such that each winner's bid is at
/// most its proportional share of the round budget. Payments are exact
/// Myerson critical values (computed by bisection on the monotone
/// allocation), so truthful bidding is dominant; each critical bid is
/// bounded by the winner's proportional share, keeping the round
/// budget-feasible. The bisection probes re-run the allocation with one
/// bid overridden in place — no slate copy per probe.
class ProportionalShareMechanism final : public Mechanism {
 public:
  ProportionalShareMechanism() = default;

  [[nodiscard]] std::string name() const override { return "proportional-share"; }
  [[nodiscard]] MechanismResult run_round(const std::vector<Candidate>& candidates,
                                          const RoundContext& context) override;
  [[nodiscard]] MechanismResult run_round(const CandidateBatch& batch,
                                          const RoundContext& context) override;
  [[nodiscard]] bool is_truthful() const noexcept override { return true; }
  /// Stateless rule: settle() is a no-op, so settlements commute and an
  /// async executor may merge them.
  [[nodiscard]] SettlementOrdering settlement_ordering() const noexcept override {
    return SettlementOrdering::kCommutative;
  }
};

}  // namespace sfl::auction
