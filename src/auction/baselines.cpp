#include "auction/baselines.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "auction/payments.h"
#include "auction/winner_determination.h"
#include "util/require.h"

namespace sfl::auction {

using sfl::util::require;

MechanismResult MyopicVcgMechanism::run_round(
    const std::vector<Candidate>& candidates, const RoundContext& context) {
  return run_round(CandidateBatch::from_aos(candidates), context);
}

MechanismResult MyopicVcgMechanism::run_round(const CandidateBatch& batch,
                                              const RoundContext& context) {
  const ScoreWeights weights{.value_weight = 1.0, .bid_weight = 1.0};
  const Allocation allocation =
      select_top_m(batch, weights, context.max_winners);
  std::vector<double> payments =
      critical_payments(batch, weights, context.max_winners, allocation);
  return make_result(batch, allocation, std::move(payments));
}

MechanismResult PayAsBidGreedyMechanism::run_round(
    const std::vector<Candidate>& candidates, const RoundContext& context) {
  return run_round(CandidateBatch::from_aos(candidates), context);
}

MechanismResult PayAsBidGreedyMechanism::run_round(const CandidateBatch& batch,
                                                   const RoundContext& context) {
  const ScoreWeights weights{.value_weight = 1.0, .bid_weight = 1.0};
  const Allocation allocation =
      select_top_m(batch, weights, context.max_winners);
  const std::span<const double> bids = batch.bids();
  std::vector<double> payments;
  payments.reserve(allocation.selected.size());
  for (const std::size_t index : allocation.selected) {
    payments.push_back(bids[index]);
  }
  return make_result(batch, allocation, std::move(payments));
}

FixedPriceMechanism::FixedPriceMechanism(double price) : price_(price) {
  require(price > 0.0, "posted price must be > 0");
}

std::vector<std::size_t> posted_price_winners(std::span<const double> values,
                                              std::span<const double> bids,
                                              double price,
                                              std::size_t max_winners) {
  std::vector<std::size_t> accepting;
  for (std::size_t i = 0; i < bids.size(); ++i) {
    if (bids[i] <= price) accepting.push_back(i);
  }
  std::sort(accepting.begin(), accepting.end(),
            [&values](std::size_t a, std::size_t b) {
              if (values[a] != values[b]) return values[a] > values[b];
              return a < b;
            });
  if (accepting.size() > max_winners) {
    accepting.resize(max_winners);
  }
  std::sort(accepting.begin(), accepting.end());
  return accepting;
}

MechanismResult FixedPriceMechanism::run_round(
    const std::vector<Candidate>& candidates, const RoundContext& context) {
  return run_round(CandidateBatch::from_aos(candidates), context);
}

MechanismResult FixedPriceMechanism::run_round(const CandidateBatch& batch,
                                               const RoundContext& context) {
  Allocation allocation;
  allocation.selected = posted_price_winners(batch.values(), batch.bids(),
                                             price_, context.max_winners);
  std::vector<double> payments(allocation.selected.size(), price_);
  return make_result(batch, allocation, std::move(payments));
}

RandomSelectionMechanism::RandomSelectionMechanism(double stipend, std::uint64_t seed)
    : stipend_(stipend), rng_(seed) {
  require(stipend >= 0.0, "stipend must be >= 0");
}

MechanismResult RandomSelectionMechanism::run_round(
    const std::vector<Candidate>& candidates, const RoundContext& context) {
  return run_round(CandidateBatch::from_aos(candidates), context);
}

MechanismResult RandomSelectionMechanism::run_round(const CandidateBatch& batch,
                                                    const RoundContext& context) {
  const std::size_t winners = std::min(context.max_winners, batch.size());
  Allocation allocation;
  if (winners > 0) {
    allocation.selected = rng_.sample_without_replacement(batch.size(), winners);
    std::sort(allocation.selected.begin(), allocation.selected.end());
  }
  std::vector<double> payments(allocation.selected.size(), stipend_);
  return make_result(batch, allocation, std::move(payments));
}

MechanismResult FirstBestOracleMechanism::run_round(
    const std::vector<Candidate>& candidates, const RoundContext& context) {
  return run_round(CandidateBatch::from_aos(candidates), context);
}

MechanismResult FirstBestOracleMechanism::run_round(const CandidateBatch& batch,
                                                    const RoundContext& context) {
  const ScoreWeights weights{.value_weight = 1.0, .bid_weight = 1.0};
  const Allocation allocation =
      select_top_m(batch, weights, context.max_winners);
  const std::span<const double> bids = batch.bids();
  std::vector<double> payments;
  payments.reserve(allocation.selected.size());
  for (const std::size_t index : allocation.selected) {
    payments.push_back(bids[index]);  // bid == true cost by contract
  }
  return make_result(batch, allocation, std::move(payments));
}

namespace {

constexpr std::size_t kNoOverride = static_cast<std::size_t>(-1);

/// Winners of the proportional-share allocation: sort by bid/value
/// (cost-effectiveness), take the largest prefix — capped at max_winners —
/// in which every member's bid fits its proportional share of the budget.
/// The rule is monotone in each bid (raising a bid moves the client later
/// in the order and only tightens its own share condition), which is what
/// makes Myerson critical payments truthful. `override_index`/`override_bid`
/// let the payment bisection probe one deviating bid without copying the
/// slate.
[[nodiscard]] std::vector<std::size_t> proportional_share_winners(
    std::span<const double> values, std::span<const double> bids,
    double budget, std::size_t max_winners,
    std::size_t override_index = kNoOverride, double override_bid = 0.0) {
  const auto bid_at = [&](std::size_t i) {
    return i == override_index ? override_bid : bids[i];
  };
  std::vector<std::size_t> order;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (values[i] > 0.0) order.push_back(i);
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double ra = bid_at(a) / values[a];
    const double rb = bid_at(b) / values[b];
    if (ra != rb) return ra < rb;
    return a < b;
  });

  std::vector<std::size_t> winners;
  double prefix_value = 0.0;
  for (std::size_t k = 0; k < order.size() && k < max_winners; ++k) {
    const std::size_t i = order[k];
    const double value_if_added = prefix_value + values[i];
    if (bid_at(i) > values[i] * budget / value_if_added) break;
    winners.push_back(i);
    prefix_value = value_if_added;
  }
  std::sort(winners.begin(), winners.end());
  return winners;
}

[[nodiscard]] bool contains(const std::vector<std::size_t>& sorted_items,
                            std::size_t item) {
  return std::binary_search(sorted_items.begin(), sorted_items.end(), item);
}

}  // namespace

BudgetedOracleMechanism::BudgetedOracleMechanism(double resolution,
                                                 std::size_t threads)
    : resolution_(resolution), threads_(threads) {
  require(resolution > 0.0, "knapsack resolution must be > 0");
}

MechanismResult BudgetedOracleMechanism::run_round(
    const std::vector<Candidate>& candidates, const RoundContext& context) {
  return run_round(CandidateBatch::from_aos(candidates), context);
}

MechanismResult BudgetedOracleMechanism::run_round(const CandidateBatch& batch,
                                                   const RoundContext& context) {
  require(std::isfinite(context.per_round_budget) && context.per_round_budget > 0.0,
          "budgeted oracle needs a finite positive per-round budget");
  const ScoreWeights weights{.value_weight = 1.0, .bid_weight = 1.0};
  const Allocation allocation =
      select_knapsack(batch, weights, context.per_round_budget,
                      context.max_winners, resolution_, {}, threads_, scratch_);
  const std::span<const double> bids = batch.bids();
  std::vector<double> payments;
  payments.reserve(allocation.selected.size());
  for (const std::size_t index : allocation.selected) {
    payments.push_back(bids[index]);  // bid == true cost by contract
  }
  return make_result(batch, allocation, std::move(payments));
}

GreedyConcaveMechanism::GreedyConcaveMechanism(double scale, std::size_t threads)
    : valuation_(scale), threads_(threads) {}

MechanismResult GreedyConcaveMechanism::run_round(
    const std::vector<Candidate>& candidates, const RoundContext& context) {
  return run_round(CandidateBatch::from_aos(candidates), context);
}

MechanismResult GreedyConcaveMechanism::run_round(const CandidateBatch& batch,
                                                  const RoundContext& context) {
  // The greedy oracle consumes AoS candidates (its marginal scan reads one
  // candidate at a time, not a streaming array pass); the gather reuses the
  // scratch slate so steady-state rounds stay allocation-free.
  const ScoreWeights weights{.value_weight = 1.0, .bid_weight = 1.0};
  std::vector<Candidate>& slate = scratch_.aos;
  slate.clear();
  slate.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) slate.push_back(batch.at(i));
  const Allocation allocation = select_greedy_concave(
      slate, valuation_, weights, context.max_winners, {}, threads_, scratch_);
  const std::span<const double> bids = batch.bids();
  std::vector<double> payments;
  payments.reserve(allocation.selected.size());
  for (const std::size_t index : allocation.selected) {
    payments.push_back(bids[index]);  // pay-as-bid
  }
  return make_result(batch, allocation, std::move(payments));
}

MyopicVcgExtMechanism::MyopicVcgExtMechanism(std::size_t threads)
    : threads_(threads) {}

MechanismResult MyopicVcgExtMechanism::run_round(
    const std::vector<Candidate>& candidates, const RoundContext& context) {
  return run_round(CandidateBatch::from_aos(candidates), context);
}

MechanismResult MyopicVcgExtMechanism::run_round(const CandidateBatch& batch,
                                                 const RoundContext& context) {
  const ScoreWeights weights{.value_weight = 1.0, .bid_weight = 1.0};
  const Allocation allocation =
      select_top_m(batch, weights, context.max_winners);
  // The leave-one-out re-solves consume AoS slates; gather once into the
  // scratch and hand the parallel payment loop the serial AoS solver (pure,
  // no pool re-entry — safe to call from pool workers).
  std::vector<Candidate>& slate = scratch_.aos;
  slate.clear();
  slate.reserve(batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) slate.push_back(batch.at(i));
  std::vector<double> payments = vcg_payments(
      slate, weights, context.max_winners, allocation,
      [](const std::vector<Candidate>& reduced, const ScoreWeights& w,
         std::size_t m, const Penalties& p) {
        return select_top_m(reduced, w, m, p);
      },
      {}, threads_, scratch_);
  return make_result(batch, allocation, std::move(payments));
}

MechanismResult ProportionalShareMechanism::run_round(
    const std::vector<Candidate>& candidates, const RoundContext& context) {
  return run_round(CandidateBatch::from_aos(candidates), context);
}

MechanismResult ProportionalShareMechanism::run_round(
    const CandidateBatch& batch, const RoundContext& context) {
  require(std::isfinite(context.per_round_budget) && context.per_round_budget > 0.0,
          "proportional share needs a finite positive per-round budget");
  const double budget = context.per_round_budget;
  const std::span<const double> values = batch.values();
  const std::span<const double> bids = batch.bids();

  Allocation allocation;
  allocation.selected =
      proportional_share_winners(values, bids, budget, context.max_winners);

  // Myerson critical payments by bisection: the largest bid at which the
  // winner keeps winning. Exactly truthful because the allocation is
  // monotone; budget-feasible because a winner's critical bid never exceeds
  // its proportional share (the share condition is part of winning).
  std::vector<double> payments;
  payments.reserve(allocation.selected.size());
  for (const std::size_t index : allocation.selected) {
    double lo = bids[index];  // known winning bid
    double hi = budget;       // a bid above B can never win
    if (lo >= hi) {
      payments.push_back(lo);
      continue;
    }
    for (int iteration = 0; iteration < 60; ++iteration) {
      const double mid = 0.5 * (lo + hi);
      if (contains(proportional_share_winners(values, bids, budget,
                                              context.max_winners, index, mid),
                   index)) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    payments.push_back(lo);
  }
  return make_result(batch, allocation, std::move(payments));
}

}  // namespace sfl::auction
