#include "auction/baselines.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "auction/payments.h"
#include "auction/winner_determination.h"
#include "util/require.h"

namespace sfl::auction {

using sfl::util::require;

MechanismResult MyopicVcgMechanism::run_round(
    const std::vector<Candidate>& candidates, const RoundContext& context) {
  const ScoreWeights weights{.value_weight = 1.0, .bid_weight = 1.0};
  const Allocation allocation =
      select_top_m(candidates, weights, context.max_winners);
  std::vector<double> payments =
      critical_payments(candidates, weights, context.max_winners, allocation);
  return make_result(candidates, allocation, std::move(payments));
}

MechanismResult PayAsBidGreedyMechanism::run_round(
    const std::vector<Candidate>& candidates, const RoundContext& context) {
  const ScoreWeights weights{.value_weight = 1.0, .bid_weight = 1.0};
  const Allocation allocation =
      select_top_m(candidates, weights, context.max_winners);
  std::vector<double> payments;
  payments.reserve(allocation.selected.size());
  for (const std::size_t index : allocation.selected) {
    payments.push_back(candidates[index].bid);
  }
  return make_result(candidates, allocation, std::move(payments));
}

FixedPriceMechanism::FixedPriceMechanism(double price) : price_(price) {
  require(price > 0.0, "posted price must be > 0");
}

MechanismResult FixedPriceMechanism::run_round(
    const std::vector<Candidate>& candidates, const RoundContext& context) {
  // Accepting clients (bid <= price), highest value first, capped at m.
  std::vector<std::size_t> accepting;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (candidates[i].bid <= price_) accepting.push_back(i);
  }
  std::sort(accepting.begin(), accepting.end(), [&](std::size_t a, std::size_t b) {
    if (candidates[a].value != candidates[b].value) {
      return candidates[a].value > candidates[b].value;
    }
    return a < b;
  });
  if (accepting.size() > context.max_winners) {
    accepting.resize(context.max_winners);
  }
  std::sort(accepting.begin(), accepting.end());

  Allocation allocation;
  allocation.selected = std::move(accepting);
  std::vector<double> payments(allocation.selected.size(), price_);
  return make_result(candidates, allocation, std::move(payments));
}

RandomSelectionMechanism::RandomSelectionMechanism(double stipend, std::uint64_t seed)
    : stipend_(stipend), rng_(seed) {
  require(stipend >= 0.0, "stipend must be >= 0");
}

MechanismResult RandomSelectionMechanism::run_round(
    const std::vector<Candidate>& candidates, const RoundContext& context) {
  const std::size_t winners = std::min(context.max_winners, candidates.size());
  Allocation allocation;
  if (winners > 0) {
    allocation.selected = rng_.sample_without_replacement(candidates.size(), winners);
    std::sort(allocation.selected.begin(), allocation.selected.end());
  }
  std::vector<double> payments(allocation.selected.size(), stipend_);
  return make_result(candidates, allocation, std::move(payments));
}

MechanismResult FirstBestOracleMechanism::run_round(
    const std::vector<Candidate>& candidates, const RoundContext& context) {
  const ScoreWeights weights{.value_weight = 1.0, .bid_weight = 1.0};
  const Allocation allocation =
      select_top_m(candidates, weights, context.max_winners);
  std::vector<double> payments;
  payments.reserve(allocation.selected.size());
  for (const std::size_t index : allocation.selected) {
    payments.push_back(candidates[index].bid);  // bid == true cost by contract
  }
  return make_result(candidates, allocation, std::move(payments));
}

namespace {

/// Winners of the proportional-share allocation: sort by bid/value
/// (cost-effectiveness), take the largest prefix — capped at max_winners —
/// in which every member's bid fits its proportional share of the budget.
/// The rule is monotone in each bid (raising a bid moves the client later
/// in the order and only tightens its own share condition), which is what
/// makes Myerson critical payments truthful.
[[nodiscard]] std::vector<std::size_t> proportional_share_winners(
    const std::vector<Candidate>& candidates, double budget,
    std::size_t max_winners) {
  std::vector<std::size_t> order;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    if (candidates[i].value > 0.0) order.push_back(i);
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double ra = candidates[a].bid / candidates[a].value;
    const double rb = candidates[b].bid / candidates[b].value;
    if (ra != rb) return ra < rb;
    return a < b;
  });

  std::vector<std::size_t> winners;
  double prefix_value = 0.0;
  for (std::size_t k = 0; k < order.size() && k < max_winners; ++k) {
    const Candidate& c = candidates[order[k]];
    const double value_if_added = prefix_value + c.value;
    if (c.bid > c.value * budget / value_if_added) break;
    winners.push_back(order[k]);
    prefix_value = value_if_added;
  }
  std::sort(winners.begin(), winners.end());
  return winners;
}

[[nodiscard]] bool contains(const std::vector<std::size_t>& sorted_items,
                            std::size_t item) {
  return std::binary_search(sorted_items.begin(), sorted_items.end(), item);
}

}  // namespace

BudgetedOracleMechanism::BudgetedOracleMechanism(double resolution)
    : resolution_(resolution) {
  require(resolution > 0.0, "knapsack resolution must be > 0");
}

MechanismResult BudgetedOracleMechanism::run_round(
    const std::vector<Candidate>& candidates, const RoundContext& context) {
  require(std::isfinite(context.per_round_budget) && context.per_round_budget > 0.0,
          "budgeted oracle needs a finite positive per-round budget");
  const ScoreWeights weights{.value_weight = 1.0, .bid_weight = 1.0};
  const Allocation allocation =
      select_knapsack(candidates, weights, context.per_round_budget,
                      context.max_winners, resolution_);
  std::vector<double> payments;
  payments.reserve(allocation.selected.size());
  for (const std::size_t index : allocation.selected) {
    payments.push_back(candidates[index].bid);  // bid == true cost by contract
  }
  return make_result(candidates, allocation, std::move(payments));
}

MechanismResult ProportionalShareMechanism::run_round(
    const std::vector<Candidate>& candidates, const RoundContext& context) {
  require(std::isfinite(context.per_round_budget) && context.per_round_budget > 0.0,
          "proportional share needs a finite positive per-round budget");
  const double budget = context.per_round_budget;

  Allocation allocation;
  allocation.selected =
      proportional_share_winners(candidates, budget, context.max_winners);

  // Myerson critical payments by bisection: the largest bid at which the
  // winner keeps winning. Exactly truthful because the allocation is
  // monotone; budget-feasible because a winner's critical bid never exceeds
  // its proportional share (the share condition is part of winning).
  std::vector<double> payments;
  payments.reserve(allocation.selected.size());
  for (const std::size_t index : allocation.selected) {
    std::vector<Candidate> probe = candidates;
    double lo = candidates[index].bid;  // known winning bid
    double hi = budget;                 // a bid above B can never win
    if (lo >= hi) {
      payments.push_back(lo);
      continue;
    }
    for (int iteration = 0; iteration < 60; ++iteration) {
      const double mid = 0.5 * (lo + hi);
      probe[index].bid = mid;
      if (contains(proportional_share_winners(probe, budget, context.max_winners),
                   index)) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    payments.push_back(lo);
  }
  return make_result(candidates, allocation, std::move(payments));
}

}  // namespace sfl::auction
