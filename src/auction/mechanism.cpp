#include "auction/mechanism.h"

namespace sfl::auction {

MechanismResult Mechanism::run_round(const CandidateBatch& batch,
                                     const RoundContext& context) {
  // Default adapter: AoS-only mechanisms see the slate they expect.
  return run_round(batch.to_aos(), context);
}

void Mechanism::run_round_into(const CandidateBatch& batch,
                               const RoundContext& context,
                               MechanismResult& out) {
  // Default adapter: mechanisms without a scratch-reusing path still work;
  // they just pay the allocating round's cost.
  out = run_round(batch, context);
}

void Mechanism::settle(const RoundSettlement& settlement) {
  // Compatibility default: fold the settlement down to the legacy
  // observation so mechanisms that only override observe() keep working.
  RoundObservation observation;
  observation.round = settlement.round;
  observation.total_payment = settlement.total_payment;
  observation.winners.reserve(settlement.winners.size());
  for (const WinnerSettlement& w : settlement.winners) {
    if (!w.dropped) observation.winners.push_back(w.client);
  }
  observe(observation);
}

void Mechanism::observe(const RoundObservation& /*observation*/) {}

}  // namespace sfl::auction
