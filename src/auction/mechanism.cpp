#include "auction/mechanism.h"

namespace sfl::auction {

void Mechanism::observe(const RoundObservation& /*observation*/) {}

}  // namespace sfl::auction
