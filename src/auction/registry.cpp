#include "auction/registry.h"

#include <sstream>
#include <utility>

#include "auction/adaptive_price.h"
#include "auction/baselines.h"
#include "core/async_settler.h"
#include "core/long_term_online_vcg.h"
#include "util/require.h"

namespace sfl::auction {

using sfl::util::require;

namespace {

/// Applies the lto.async_settle knob: wraps the rule in the streamed
/// settlement pipeline (results stay bit-identical; settle() just moves to
/// the shared pool behind a flush barrier).
std::unique_ptr<Mechanism> maybe_async(std::unique_ptr<Mechanism> mechanism,
                                       const MechanismConfig& config) {
  if (!config.lto.async_settle) return mechanism;
  return std::make_unique<core::AsyncSettlementMechanism>(std::move(mechanism));
}

core::LtoVcgConfig lto_config_from(const MechanismConfig& config, bool paced) {
  core::LtoVcgConfig lto;
  lto.v_weight = config.lto.v_weight;
  lto.per_round_budget = config.per_round_budget;
  lto.budget_schedule = config.lto.budget_schedule;
  lto.shared_scratch = config.lto.shared_scratch;
  if (config.lto.vcg_externality_payments) {
    lto.payment_rule = core::PaymentRule::kVcgExternality;
  }
  if (config.lto.bid_proxy_queue_arrival) {
    lto.queue_arrival = core::QueueArrivalMode::kBidProxy;
  }
  lto.oracle_threads = config.lto.oracle_threads;
  if (paced) {
    if (!config.lto.energy_rates.empty()) {
      lto.energy_rates = config.lto.energy_rates;
    } else if (config.lto.pacing_rate > 0.0) {
      require(config.num_clients > 0,
              "uniform pacing needs config.num_clients > 0");
      lto.energy_rates.assign(config.num_clients, config.lto.pacing_rate);
    }
  }
  return lto;
}

void register_builtins(MechanismRegistry& registry) {
  registry.add(
      "lto-vcg",
      "Long-term online VCG (the paper mechanism): drift-plus-penalty "
      "affine maximizer, truthful critical payments, budget queue Q and "
      "per-client pacing queues Z_i",
      [](const MechanismConfig& config) -> std::unique_ptr<Mechanism> {
        return maybe_async(std::make_unique<core::LongTermOnlineVcgMechanism>(
                               lto_config_from(config, /*paced=*/true)),
                           config);
      });
  registry.add_variant(
      "lto-vcg-sharded", "lto-vcg",
      "LTO-VCG with the multi-threaded sharded WDP engine: identical "
      "allocations and payments to lto-vcg, spans scored/selected in "
      "parallel (lto.shards: 0 = auto, 1 = serial, k = k shards)",
      [](const MechanismConfig& config) -> std::unique_ptr<Mechanism> {
        core::LtoVcgConfig lto = lto_config_from(config, /*paced=*/true);
        lto.shards = config.lto.shards;
        lto.name = "lto-vcg-sharded";
        return maybe_async(
            std::make_unique<core::LongTermOnlineVcgMechanism>(lto), config);
      });
  registry.add_variant(
      "lto-vcg-dist", "lto-vcg",
      "LTO-VCG over the distributed WDP coordinator: batch spans ship to "
      "shard workers through the wire codec and their top-(m+1) survivor "
      "sets merge exactly, so allocations and payments stay bit-identical "
      "to lto-vcg for any worker count, reply order, or recovered fault "
      "(lto.dist_workers: 0 = default 2, k = k loopback workers)",
      [](const MechanismConfig& config) -> std::unique_ptr<Mechanism> {
        core::LtoVcgConfig lto = lto_config_from(config, /*paced=*/true);
        // shards = 0 lets the coordinator derive one span per worker —
        // reproducible from the configuration alone, unlike hardware auto.
        lto.shards = config.lto.shards;
        lto.dist_workers =
            config.lto.dist_workers == 0 ? 2 : config.lto.dist_workers;
        lto.dist_hedge = config.lto.hedge;
        lto.name = "lto-vcg-dist";
        return maybe_async(
            std::make_unique<core::LongTermOnlineVcgMechanism>(lto), config);
      });
  registry.add_variant(
      "lto-vcg-dist-pipe", "lto-vcg",
      "LTO-VCG on the pipelined distributed WDP coordinator: up to "
      "lto.dist_pipeline_depth rounds in flight over the shard transport "
      "at once on per-round scratch lanes, retiring in strict round order "
      "— settled trajectories bit-identical to lto-vcg at any depth, "
      "worker count, or fault schedule (lto.dist_pipeline_depth: 0 = "
      "default 2; lto.dist_workers: 0 = default 2; lto.async_settle is "
      "ignored — pipelined retirement settles synchronously, each settle "
      "validating the next round's speculative dispatch)",
      [](const MechanismConfig& config) -> std::unique_ptr<Mechanism> {
        core::LtoVcgConfig lto = lto_config_from(config, /*paced=*/true);
        lto.shards = config.lto.shards;
        lto.dist_workers =
            config.lto.dist_workers == 0 ? 2 : config.lto.dist_workers;
        lto.dist_pipeline_depth = config.lto.dist_pipeline_depth == 0
                                      ? 2
                                      : config.lto.dist_pipeline_depth;
        lto.dist_hedge = config.lto.hedge;
        lto.name = "lto-vcg-dist-pipe";
        // Deliberately NOT maybe_async: an async decorator would hide the
        // pipelined round API from drivers (silently disabling the
        // feature), and the pipelined contract requires synchronous
        // settlement anyway — the settle IS the speculation-validation
        // event. Callers that stream settlements for the whole roster
        // (OrchestratorConfig.async_settle) still work: this mechanism
        // then just runs through the synchronous engine path.
        return std::make_unique<core::LongTermOnlineVcgMechanism>(lto);
      });
  registry.add_variant(
      "lto-vcg-dist-hedge", "lto-vcg",
      "LTO-VCG on the hedged distributed WDP coordinator: adaptive "
      "per-worker deadlines (observed latency mean + k*stddev) re-dispatch "
      "laggard shards to the next live worker in rendezvous order without "
      "abandoning the original attempt, first valid reply wins, and "
      "workers join/leave between rounds via kWorkerHello/kWorkerGoodbye — "
      "settled trajectories bit-identical to lto-vcg under any straggler "
      "or membership schedule (lto.dist_workers: 0 = default 4; "
      "lto.dist_pipeline_depth: 0 = default 2; hedging forced on)",
      [](const MechanismConfig& config) -> std::unique_ptr<Mechanism> {
        core::LtoVcgConfig lto = lto_config_from(config, /*paced=*/true);
        lto.shards = config.lto.shards;
        lto.dist_workers =
            config.lto.dist_workers == 0 ? 4 : config.lto.dist_workers;
        lto.dist_pipeline_depth = config.lto.dist_pipeline_depth == 0
                                      ? 2
                                      : config.lto.dist_pipeline_depth;
        lto.dist_hedge = true;
        lto.name = "lto-vcg-dist-hedge";
        // Pipelined like lto-vcg-dist-pipe, so no async decorator (see
        // the note there).
        return std::make_unique<core::LongTermOnlineVcgMechanism>(lto);
      });
  registry.add_variant(
      "lto-vcg-async", "lto-vcg",
      "LTO-VCG behind the streamed settlement pipeline: settle() enqueues "
      "onto the shared pool, run_round drains first (flush barrier), so "
      "trajectories stay bit-identical to lto-vcg while queue updates "
      "overlap the caller's training work (lto.shards still applies)",
      [](const MechanismConfig& config) -> std::unique_ptr<Mechanism> {
        core::LtoVcgConfig lto = lto_config_from(config, /*paced=*/true);
        lto.shards = config.lto.shards;
        lto.name = "lto-vcg-async";
        return std::make_unique<core::AsyncSettlementMechanism>(
            std::make_unique<core::LongTermOnlineVcgMechanism>(lto));
      });
  registry.add(
      "lto-vcg-unpaced",
      "LTO-VCG ablation with the sustainability queues Z_i disabled "
      "(budget queue only)",
      [](const MechanismConfig& config) -> std::unique_ptr<Mechanism> {
        return maybe_async(std::make_unique<core::LongTermOnlineVcgMechanism>(
                               lto_config_from(config, /*paced=*/false)),
                           config);
      });
  registry.add(
      "myopic-vcg",
      "Per-round VCG: top-m by (value - bid) with critical payments; "
      "truthful but budget-blind",
      [](const MechanismConfig&) -> std::unique_ptr<Mechanism> {
        return std::make_unique<MyopicVcgMechanism>();
      });
  registry.add(
      "pay-as-bid",
      "Top-m by (value - bid), winners paid their bids; manipulable",
      [](const MechanismConfig&) -> std::unique_ptr<Mechanism> {
        return std::make_unique<PayAsBidGreedyMechanism>();
      });
  registry.add(
      "fixed-price",
      "Posted price: bids at or under the price win (highest value first), "
      "all paid the price",
      [](const MechanismConfig& config) -> std::unique_ptr<Mechanism> {
        return std::make_unique<FixedPriceMechanism>(config.fixed_price.price);
      });
  registry.add(
      "adaptive-price",
      "Posted price with a multiplicative budget-tracking update after "
      "each round",
      [](const MechanismConfig& config) -> std::unique_ptr<Mechanism> {
        return std::make_unique<AdaptivePostedPriceMechanism>(
            AdaptivePriceConfig{.initial_price = config.adaptive_price.initial_price,
                                .step = config.adaptive_price.step,
                                .min_price = config.adaptive_price.min_price,
                                .max_price = config.adaptive_price.max_price});
      });
  registry.add(
      "random-stipend",
      "Uniform random m winners paid a fixed stipend (FedAvg-style "
      "sampling)",
      [](const MechanismConfig& config) -> std::unique_ptr<Mechanism> {
        return std::make_unique<RandomSelectionMechanism>(
            config.random_stipend.stipend, config.seed);
      });
  registry.add(
      "proportional-share",
      "Singer-style budget-feasible truthful mechanism with proportional "
      "budget shares",
      [](const MechanismConfig&) -> std::unique_ptr<Mechanism> {
        return std::make_unique<ProportionalShareMechanism>();
      });
  registry.add(
      "first-best-oracle",
      "Clairvoyant welfare optimum paying true costs; regret upper bound, "
      "not a real mechanism",
      [](const MechanismConfig&) -> std::unique_ptr<Mechanism> {
        return std::make_unique<FirstBestOracleMechanism>();
      });
  registry.add(
      "budgeted-oracle",
      "Clairvoyant budget-feasible knapsack optimum paying true costs; "
      "information-rent reference",
      [](const MechanismConfig& config) -> std::unique_ptr<Mechanism> {
        return std::make_unique<BudgetedOracleMechanism>(
            config.budgeted_oracle.resolution);
      });
  registry.add_variant(
      "budgeted-oracle-par", "budgeted-oracle",
      "Budgeted oracle with each knapsack DP layer split across the shared "
      "pool under a layer barrier: identical selections and payments to "
      "budgeted-oracle at every lane count (oracle.threads: 0 = auto, 1 = "
      "serial, k = k lanes)",
      [](const MechanismConfig& config) -> std::unique_ptr<Mechanism> {
        return std::make_unique<BudgetedOracleMechanism>(
            config.budgeted_oracle.resolution, config.oracle.threads);
      });
  registry.add(
      "greedy-concave",
      "Concave-valuation greedy (diminishing returns of total selected "
      "mass), winners paid their bids; submodular-WDP approximation "
      "reference (oracle.greedy_scale sets the valuation scale)",
      [](const MechanismConfig& config) -> std::unique_ptr<Mechanism> {
        return std::make_unique<GreedyConcaveMechanism>(
            config.oracle.greedy_scale);
      });
  registry.add_variant(
      "greedy-concave-par", "greedy-concave",
      "Greedy-concave with each marginal scan run as per-chunk argmax on "
      "the shared pool, reduced under the serial total order: identical "
      "selections and payments to greedy-concave at every lane count "
      "(oracle.threads: 0 = auto, 1 = serial, k = k lanes)",
      [](const MechanismConfig& config) -> std::unique_ptr<Mechanism> {
        return std::make_unique<GreedyConcaveMechanism>(
            config.oracle.greedy_scale, config.oracle.threads);
      });
  registry.add(
      "myopic-vcg-ext",
      "Per-round VCG paying explicit leave-one-out externalities (equal to "
      "myopic-vcg's critical values for the modular objective, computed "
      "the O(m x WDP) way); payment-equality reference",
      [](const MechanismConfig&) -> std::unique_ptr<Mechanism> {
        return std::make_unique<MyopicVcgExtMechanism>();
      });
  registry.add_variant(
      "myopic-vcg-ext-par", "myopic-vcg-ext",
      "Myopic VCG-externality with the m independent leave-one-out solves "
      "partitioned across the shared pool: identical payments to "
      "myopic-vcg-ext at every lane count (oracle.threads: 0 = auto, 1 = "
      "serial, k = k lanes)",
      [](const MechanismConfig& config) -> std::unique_ptr<Mechanism> {
        return std::make_unique<MyopicVcgExtMechanism>(config.oracle.threads);
      });
}

}  // namespace

MechanismRegistry& MechanismRegistry::global() {
  static MechanismRegistry registry = [] {
    MechanismRegistry built;
    register_builtins(built);
    return built;
  }();
  return registry;
}

void MechanismRegistry::add(std::string name, std::string description,
                            Factory factory) {
  add_variant(std::move(name), /*variant_of=*/"", std::move(description),
              std::move(factory));
}

void MechanismRegistry::add_variant(std::string name, std::string variant_of,
                                    std::string description, Factory factory) {
  require(!name.empty(), "mechanism key must be non-empty");
  require(static_cast<bool>(factory), "mechanism factory must be callable");
  require(find(name) == nullptr,
          "mechanism key already registered: " + name);
  require(name != variant_of, "a mechanism cannot be its own variant");
  entries_.push_back(Entry{
      .info = MechanismInfo{.name = std::move(name),
                            .description = std::move(description),
                            .variant_of = std::move(variant_of)},
      .factory = std::move(factory)});
}

bool MechanismRegistry::contains(const std::string& name) const noexcept {
  return find(name) != nullptr;
}

const MechanismRegistry::Entry* MechanismRegistry::find(
    const std::string& name) const noexcept {
  for (const Entry& entry : entries_) {
    if (entry.info.name == name) return &entry;
  }
  return nullptr;
}

std::unique_ptr<Mechanism> MechanismRegistry::build(
    const std::string& name, const MechanismConfig& config) const {
  const Entry* entry = find(name);
  if (entry == nullptr) {
    std::ostringstream message;
    message << "unknown mechanism: " << name << " (known:";
    for (const Entry& known : entries_) message << ' ' << known.info.name;
    message << ')';
    throw std::invalid_argument(message.str());
  }
  return entry->factory(config);
}

std::vector<MechanismInfo> MechanismRegistry::describe() const {
  std::vector<MechanismInfo> infos;
  infos.reserve(entries_.size());
  for (const Entry& entry : entries_) infos.push_back(entry.info);
  return infos;
}

std::vector<std::string> MechanismRegistry::names() const {
  std::vector<std::string> keys;
  keys.reserve(entries_.size());
  for (const Entry& entry : entries_) keys.push_back(entry.info.name);
  return keys;
}

std::unique_ptr<Mechanism> build_mechanism(const std::string& name,
                                           const MechanismConfig& config) {
  return MechanismRegistry::global().build(name, config);
}

}  // namespace sfl::auction
