// WdpEngine: the winner-determination + payment engine contract.
//
// One auction round is "score the slate, select the exact top-m, price the
// winners at their critical values" against a caller-owned RoundScratch.
// The serial/multi-threaded ShardedWdp and the multi-process DistributedWdp
// (src/dist) both implement this interface, and LongTermOnlineVcgMechanism
// addresses whichever engine its config selects through it — so execution
// topology (inline, thread-sharded, networked shard workers) is invisible
// to the mechanism layer.
//
// Exactness contract shared by every implementation: for the same
// (batch, weights, max_winners, penalties) inputs, allocation and payments
// are bit-identical to the serial select_top_m + critical_payments pair.
// Implementations may differ only in wall time and failure modes.
//
// Methods are const: an engine is logically immutable configuration; all
// per-round state lives in the caller's RoundScratch (implementations with
// internal transport sequencing use mutable members and document their
// re-entrancy limits).
#pragma once

#include <vector>

#include "auction/candidate_batch.h"
#include "auction/market_batch.h"
#include "auction/round_scratch.h"
#include "auction/types.h"

namespace sfl::auction {

class WdpEngine {
 public:
  virtual ~WdpEngine() = default;

  /// Scores the batch into scratch.scores and writes the exact top-m
  /// allocation into scratch.allocation (also returned).
  virtual const Allocation& select_top_m(const CandidateBatch& batch,
                                         const ScoreWeights& weights,
                                         std::size_t max_winners,
                                         const Penalties& penalties,
                                         RoundScratch& scratch) const = 0;

  /// Critical-value payments for scratch.allocation, written into
  /// scratch.payments (also returned). Requires select_top_m to have run on
  /// the same scratch/batch/weights/penalties.
  virtual const std::vector<double>& critical_payments(
      const CandidateBatch& batch, const ScoreWeights& weights,
      std::size_t max_winners, const Penalties& penalties,
      RoundScratch& scratch) const = 0;

  /// One full round: select + price. Default delegates to the two-phase
  /// methods above.
  virtual void run_round(const CandidateBatch& batch,
                         const ScoreWeights& weights, std::size_t max_winners,
                         const Penalties& penalties,
                         RoundScratch& scratch) const {
    select_top_m(batch, weights, max_winners, penalties, scratch);
    critical_payments(batch, weights, max_winners, penalties, scratch);
  }

  /// The cross-market batch axis: clears EVERY market of `batch` — each an
  /// independent (slate, weights, max_winners, penalties) round — in one
  /// call, writing per-market winners (market-local indices) and critical
  /// payments into `result`. Must first batch.validate() (throwing before
  /// any market is scored, `result` untouched), and each market's slot must
  /// be bit-identical to running that market alone through run_round.
  /// Exception-atomic END TO END: if any market's round throws mid-batch,
  /// `result` is restored to its reset(batch) layout (every slot zeroed)
  /// before the exception escapes — callers never observe a half-written
  /// arena. The default gathers each market into a temporary slate and
  /// loops run_round; ShardedWdp overrides with the fused lane-parallel
  /// implementation (same atomicity contract).
  ///
  /// When batch.exclusive() is set, the markets are NOT independent: every
  /// client wins in at most one market per call, resolved by a global
  /// greedy over (score desc, ClientId asc, market index asc, row asc),
  /// with critical payments priced against the constrained outcome (see
  /// MarketBatch::set_exclusive). Every implementation must produce
  /// bit-identical exclusive results to the serial reference in this base
  /// class; ShardedWdp does so with per-market sorts parallelized around a
  /// deterministic cursor merge.
  virtual void run_rounds(const MarketBatch& batch, MarketBatchResult& result,
                          RoundScratch& scratch) const;
};

}  // namespace sfl::auction
