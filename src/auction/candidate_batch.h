// Structure-of-arrays candidate slate for the batched auction path.
//
// The AoS `std::vector<Candidate>` interface is convenient for tests and
// small markets, but the production hot path (score N candidates, select
// top-m) is a streaming pass over four parallel arrays. CandidateBatch keeps
// ids, values, bids, and energy costs contiguous so scoring vectorizes and
// stays cache-resident at N = 100k+; `std::span` views let solvers and
// payment rules consume the arrays without copying. Converters to/from the
// AoS representation keep every existing mechanism working unchanged.
#pragma once

#include <span>
#include <vector>

#include "auction/types.h"

namespace sfl::auction {

class CandidateBatch {
 public:
  CandidateBatch() = default;

  /// Gathers an AoS slate into parallel arrays. Validates every candidate.
  [[nodiscard]] static CandidateBatch from_aos(
      std::span<const Candidate> candidates);

  [[nodiscard]] std::size_t size() const noexcept { return ids_.size(); }
  [[nodiscard]] bool empty() const noexcept { return ids_.empty(); }

  void reserve(std::size_t capacity);
  void clear() noexcept;

  /// Appends one candidate. Validation happens HERE, once per slate
  /// construction (value >= 0, bid >= 0, energy cost > 0; throws
  /// std::invalid_argument) — the per-round solvers then trust the batch
  /// and skip the per-candidate scans on the hot path (re-enable them with
  /// SFL_VALIDATE=1 or a debug build; see util::validate_mode_enabled).
  void push_back(const Candidate& candidate);
  void emplace(ClientId id, double value, double bid, double energy_cost);

  /// Materializes candidate `index` (bounds-checked by the caller).
  [[nodiscard]] Candidate at(std::size_t index) const {
    return Candidate{.id = ids_[index],
                     .value = values_[index],
                     .bid = bids_[index],
                     .energy_cost = energy_costs_[index]};
  }

  /// Scatters back to the AoS representation (adapter for mechanisms that
  /// have no native batch path).
  [[nodiscard]] std::vector<Candidate> to_aos() const;

  [[nodiscard]] std::span<const ClientId> ids() const noexcept { return ids_; }
  [[nodiscard]] std::span<const double> values() const noexcept {
    return values_;
  }
  [[nodiscard]] std::span<const double> bids() const noexcept { return bids_; }
  [[nodiscard]] std::span<const double> energy_costs() const noexcept {
    return energy_costs_;
  }

 private:
  std::vector<ClientId> ids_;
  std::vector<double> values_;
  std::vector<double> bids_;
  std::vector<double> energy_costs_;
};

/// Full per-candidate scan of an already-constructed batch (the checks
/// emplace applies element-wise). Construction normally makes this
/// redundant; solvers call it only under util::validate_mode_enabled() to
/// catch post-construction corruption while debugging.
void validate_batch(const CandidateBatch& batch);

}  // namespace sfl::auction
