// RoundScratch: every buffer one auction round needs, owned by the caller
// and reused across rounds.
//
// The steady-state hot path (score N candidates, select top-m, price the
// winners) is allocation-free once these vectors have grown to the market's
// size: each round only clear()s and resize()s within existing capacity.
// One RoundScratch per CONCURRENT round; the buffers are NOT thread-safe
// to share, but the sharded WDP partitions them internally (each shard
// writes a disjoint span), so one scratch serves a parallel round. The
// scratch carries no state BETWEEN rounds, so several mechanisms whose
// rounds never overlap may share one warmed scratch
// (LtoVcgConfig.shared_scratch; bench::ScratchPool leases per-lane
// scratches to multi-mechanism comparison runs).
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "auction/types.h"

namespace sfl::auction {

struct RoundScratch {
  /// phi_i for every candidate, aligned with the batch (size n).
  std::vector<double> scores;
  /// Candidate indices, iota'd then partially selected per shard (size n).
  std::vector<std::size_t> order;
  /// Mechanism-owned bid-independent penalties (size n or empty).
  Penalties penalties;
  /// Merged per-shard survivors (<= shards * (m + 1) indices).
  std::vector<std::size_t> survivors;
  /// The round's allocation; `selected` capacity is reused.
  Allocation allocation;
  /// Per-winner payments aligned with allocation.selected.
  std::vector<double> payments;

  /// Grows every buffer to the given market size up front so the first
  /// measured round is already allocation-free. Optional: the buffers also
  /// grow on first use.
  void reserve(std::size_t candidates, std::size_t shards,
               std::size_t max_winners) {
    scores.reserve(candidates);
    order.reserve(candidates);
    penalties.reserve(candidates);
    survivors.reserve(std::min(candidates, shards * (max_winners + 1)));
    allocation.selected.reserve(max_winners);
    payments.reserve(max_winners);
  }

  void clear() noexcept {
    scores.clear();
    order.clear();
    penalties.clear();
    survivors.clear();
    allocation.selected.clear();
    allocation.total_score = 0.0;
    payments.clear();
  }
};

}  // namespace sfl::auction
