// RoundScratch: every buffer one auction round needs, owned by the caller
// and reused across rounds.
//
// The steady-state hot path (score N candidates, select top-m, price the
// winners) is allocation-free once these vectors have grown to the market's
// size: each round only clear()s and resize()s within existing capacity.
// One RoundScratch per CONCURRENT round; the buffers are NOT thread-safe
// to share, but the sharded WDP partitions them internally (each shard
// writes a disjoint span), so one scratch serves a parallel round. The
// scratch carries no state BETWEEN rounds, so several mechanisms whose
// rounds never overlap may share one warmed scratch
// (LtoVcgConfig.shared_scratch; bench::ScratchPool leases per-lane
// scratches to multi-mechanism comparison runs).
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "auction/types.h"

namespace sfl::auction {

struct RoundScratch {
  /// phi_i for every candidate, aligned with the batch (size n).
  std::vector<double> scores;
  /// Candidate indices, iota'd then partially selected per shard (size n).
  std::vector<std::size_t> order;
  /// Mechanism-owned bid-independent penalties (size n or empty).
  Penalties penalties;
  /// Merged per-shard survivors (<= shards * (m + 1) indices).
  std::vector<std::size_t> survivors;
  /// The round's allocation; `selected` capacity is reused.
  Allocation allocation;
  /// Per-winner payments aligned with allocation.selected.
  std::vector<double> payments;

  // Exclusive-mode (MarketBatch::exclusive()) cross-market buffers. Like
  // every other member, they grow on first use and are reused after; a
  // non-exclusive round never touches them.
  /// Sorted unique ClientIds of the whole arena (assignment-set keys).
  std::vector<ClientId> exclusive_clients;
  /// One byte per exclusive_clients entry: 1 = already won somewhere.
  std::vector<unsigned char> exclusive_assigned;
  /// Row -> market index (the base serial greedy walks a globally sorted
  /// order and must recover each row's market).
  std::vector<std::size_t> exclusive_market_of;
  /// Fused merge state: per-market cursor into the sorted order, and the
  /// heap of market indices keyed by each cursor's current row.
  std::vector<std::size_t> exclusive_cursor;
  std::vector<std::size_t> exclusive_heap;

  /// Grows every buffer to the given market size up front so the first
  /// measured round is already allocation-free. Optional: the buffers also
  /// grow on first use.
  void reserve(std::size_t candidates, std::size_t shards,
               std::size_t max_winners) {
    scores.reserve(candidates);
    order.reserve(candidates);
    penalties.reserve(candidates);
    survivors.reserve(std::min(candidates, shards * (max_winners + 1)));
    allocation.selected.reserve(max_winners);
    payments.reserve(max_winners);
  }

  void clear() noexcept {
    scores.clear();
    order.clear();
    penalties.clear();
    survivors.clear();
    allocation.selected.clear();
    allocation.total_score = 0.0;
    payments.clear();
    exclusive_clients.clear();
    exclusive_assigned.clear();
    exclusive_market_of.clear();
    exclusive_cursor.clear();
    exclusive_heap.clear();
  }
};

/// Caller-owned buffers for the comparison oracles (VCG externality
/// payments, concave greedy, knapsack DP) — the slow-path pair of
/// RoundScratch. Same ownership contract: one OracleScratch per concurrent
/// round, no state carried between rounds, buffers grow on first use and
/// are reused after. The parallel oracle overloads partition these buffers
/// internally (per-lane slates, disjoint gain/DP spans), so one scratch
/// serves a parallel round. Steady-state oracle rounds are allocation-free
/// up to the VCG solver's own internals (the leave-one-out re-solve builds
/// its allocation through the caller-supplied WdpSolver, which may
/// allocate).
struct OracleScratch {
  /// Gathered AoS slate for batch-native mechanisms that feed AoS oracles.
  std::vector<Candidate> aos;
  /// Per-lane leave-one-out slates for the parallel VCG externality loop.
  std::vector<std::vector<Candidate>> lane_slates;
  /// Per-lane leave-one-out penalty vectors, aligned with lane_slates.
  std::vector<Penalties> lane_penalties;
  /// Knapsack DP table, (n+1) * (k_cap+1) * (capacity+1) doubles.
  std::vector<double> dp;
  /// Discretized per-item bid weights for the knapsack DP (size n).
  std::vector<std::size_t> item_weight;
  /// Precomputed per-candidate scores for score-based oracles (size n).
  std::vector<double> scores;
  /// Per-candidate marginal gains for the greedy scan (size n).
  std::vector<double> gains;
  /// Per-lane argmax candidates from one greedy scan (size lanes).
  std::vector<std::size_t> lane_best;
  /// Greedy taken flags (size n; not vector<bool> — lanes write disjoint
  /// reads, and byte flags keep the scan branch-free and race-free).
  std::vector<unsigned char> taken;

  void clear() noexcept {
    aos.clear();
    for (auto& slate : lane_slates) slate.clear();
    for (auto& penalties : lane_penalties) penalties.clear();
    dp.clear();
    item_weight.clear();
    scores.clear();
    gains.clear();
    lane_best.clear();
    taken.clear();
  }
};

}  // namespace sfl::auction
