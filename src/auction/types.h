// Core types for the per-round procurement auction.
//
// Terminology (reverse auction): the server *buys* participation. Each
// candidate client i has a public valuation v_i (how much the server values
// one round of i's training, derived from data size x estimated quality), a
// reported cost b_i (the bid — the only private, strategic quantity), and an
// energy cost e_i used by the long-term sustainability constraint.
#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

namespace sfl::auction {

using ClientId = std::size_t;

/// One client's standing in one auction round, as seen by the auctioneer.
struct Candidate {
  ClientId id = 0;
  double value = 0.0;        ///< v_i >= 0: server's valuation of participation
  double bid = 0.0;          ///< b_i >= 0: reported per-round cost
  double energy_cost = 1.0;  ///< e_i > 0: energy drained by one participation
};

/// Per-round constraints and bookkeeping handed to a mechanism.
struct RoundContext {
  std::size_t round = 0;
  std::size_t max_winners = 10;  ///< m: communication/aggregation cap per round
  /// Long-term per-round budget target B-bar (time-average payment bound).
  double per_round_budget = std::numeric_limits<double>::infinity();
  /// Remaining hard budget, if the run enforces one (infinity = soft only).
  double remaining_budget = std::numeric_limits<double>::infinity();
};

/// Output of one auction round. `winners` and `payments` are aligned.
struct MechanismResult {
  std::vector<ClientId> winners;
  std::vector<double> payments;

  [[nodiscard]] double total_payment() const noexcept {
    double sum = 0.0;
    for (const double p : payments) sum += p;
    return sum;
  }

  [[nodiscard]] bool won(ClientId id) const noexcept {
    for (const ClientId w : winners) {
      if (w == id) return true;
    }
    return false;
  }

  /// Payment to `id`, or 0 if `id` did not win.
  [[nodiscard]] double payment_for(ClientId id) const noexcept {
    for (std::size_t i = 0; i < winners.size(); ++i) {
      if (winners[i] == id) return payments[i];
    }
    return 0.0;
  }
};

/// Affine-maximizer score weights: phi_i = value_weight*v_i - bid_weight*b_i
/// - penalty_i. Truthfulness requires bid_weight > 0 and both weights
/// independent of any individual bid.
struct ScoreWeights {
  double value_weight = 1.0;  ///< V (Lyapunov penalty weight)
  double bid_weight = 1.0;    ///< V + Q(t) (budget-queue-inflated cost weight)
};

/// Bid-independent additive penalties (e.g. Z_i(t)*e_i), one per candidate;
/// empty means all-zero.
using Penalties = std::vector<double>;

/// phi_i from SoA components. Every scoring site — AoS, batch, sharded,
/// payments — funnels through this ONE expression: the engine's bit-for-bit
/// equivalence contract depends on a single IEEE evaluation shape, so never
/// re-spell the arithmetic inline.
[[nodiscard]] inline double score(double value, double bid,
                                  const ScoreWeights& weights,
                                  double penalty = 0.0) noexcept {
  return weights.value_weight * value - weights.bid_weight * bid - penalty;
}

/// phi_i for a single candidate.
[[nodiscard]] inline double score(const Candidate& candidate,
                                  const ScoreWeights& weights,
                                  double penalty = 0.0) noexcept {
  return score(candidate.value, candidate.bid, weights, penalty);
}

/// `penalties[index]`, with the empty vector meaning all-zero.
[[nodiscard]] inline double penalty_at(const Penalties& penalties,
                                       std::size_t index) noexcept {
  return penalties.empty() ? 0.0 : penalties[index];
}

/// A selected subset (indices into the candidate vector) plus its total score.
struct Allocation {
  std::vector<std::size_t> selected;  ///< indices into the candidates vector
  double total_score = 0.0;

  [[nodiscard]] bool contains(std::size_t index) const noexcept {
    for (const std::size_t s : selected) {
      if (s == index) return true;
    }
    return false;
  }
};

}  // namespace sfl::auction
