#include "auction/valuation.h"

#include <cmath>

#include "util/require.h"

namespace sfl::auction {

using sfl::util::require;

ModularValuation::ModularValuation(double scale) : scale_(scale) {
  require(scale > 0.0, "valuation scale must be > 0");
}

double ModularValuation::client_value(double data_size, double quality) const {
  require(data_size >= 0.0, "data size must be >= 0");
  require(quality >= 0.0 && quality <= 1.0, "quality must be in [0, 1]");
  return scale_ * data_size * quality;
}

ConcaveValuation::ConcaveValuation(double scale) : scale_(scale) {
  require(scale > 0.0, "valuation scale must be > 0");
}

double ConcaveValuation::set_value(double total_mass) const {
  require(total_mass >= 0.0, "mass must be >= 0");
  return scale_ * std::log1p(total_mass);
}

double ConcaveValuation::marginal_value(double total_mass, double added_mass) const {
  require(added_mass >= 0.0, "added mass must be >= 0");
  return set_value(total_mass + added_mass) - set_value(total_mass);
}

double reported_welfare(const std::vector<Candidate>& candidates,
                        const Allocation& allocation) {
  double welfare = 0.0;
  for (const std::size_t index : allocation.selected) {
    const Candidate& c =
        candidates[sfl::util::checked_index(index, candidates.size(), "candidate")];
    welfare += c.value - c.bid;
  }
  return welfare;
}

double true_welfare(const std::vector<Candidate>& candidates,
                    const std::vector<double>& true_costs,
                    const Allocation& allocation) {
  require(true_costs.size() == candidates.size(),
          "one true cost per candidate required");
  double welfare = 0.0;
  for (const std::size_t index : allocation.selected) {
    const Candidate& c =
        candidates[sfl::util::checked_index(index, candidates.size(), "candidate")];
    welfare += c.value - true_costs[index];
  }
  return welfare;
}

}  // namespace sfl::auction
