// ShardedWdp: the multi-threaded, allocation-free WDP + payment engine.
//
// One auction round is three passes over the CandidateBatch arrays:
//   1. shard: the batch is split into `shards` contiguous spans with the
//      thread pool's stable chunk layout; each shard scores its span into
//      the shared scratch.scores array and partially selects its local
//      top-(m+1) with nth_element (m+1, not m, so the merged survivor set
//      provably contains the best global loser — the payment threshold —
//      as well as every global winner);
//   2. merge: the <= shards*(m+1) survivors are sorted under the exact
//      serial total order (score desc, ClientId asc, index asc) and the
//      global top-m positive-score prefix becomes the allocation. Select-
//      then-merge is EXACT for the modular objective: each global winner is
//      within the top-m of its own shard, and the best loser within the
//      top-(m+1), so nothing the merge needs is ever dropped.
//   3. price: critical payments from the merged order — the threshold is
//      the best non-selected survivor's score (clamped at 0), identical to
//      the serial best-loser scan but O(shards*m) instead of O(n).
//
// Exactness contract: for ANY shard count, the allocation and payments are
// bit-identical to the serial select_top_m + critical_payments pair on the
// same inputs (the scoring arithmetic, comparator, and payment formula are
// the same IEEE expressions; the selected set is unique under the strict
// total order). shards=1 runs fully inline without touching the pool.
//
// Scratch ownership: the caller owns the RoundScratch and must not share it
// across concurrent rounds. The engine only resizes within capacity at
// steady state, so a warmed-up round performs zero heap allocations.
#pragma once

#include <cstddef>
#include <vector>

#include "auction/candidate_batch.h"
#include "auction/round_scratch.h"
#include "auction/types.h"
#include "auction/wdp_engine.h"
#include "util/thread_pool.h"

namespace sfl::auction {

struct ShardedWdpConfig {
  /// Number of contiguous batch spans scored/selected independently.
  /// 0 = auto (the pool's thread count, i.e. hardware concurrency);
  /// 1 = serial (bit-identical to select_top_m + critical_payments, no
  /// pool involvement). Shard count is a logical partition, not a thread
  /// count: results are identical on any machine.
  std::size_t shards = 0;
};

class ShardedWdp final : public WdpEngine {
 public:
  /// `pool` may be null: rounds that actually run more than one shard then
  /// execute on util::shared_pool() (resolved at the call site, so a
  /// serial engine never spawns threads).
  explicit ShardedWdp(ShardedWdpConfig config = {},
                      sfl::util::ThreadPool* pool = nullptr);

  /// The shard count a round over `n` candidates would use (>= 1, <= n
  /// except that n = 0 still reports 1).
  [[nodiscard]] std::size_t effective_shards(std::size_t n) const;

  [[nodiscard]] const ShardedWdpConfig& config() const noexcept {
    return config_;
  }

  /// Scores the batch into scratch.scores and writes the exact top-m
  /// allocation into scratch.allocation (also returned). Bit-identical to
  /// the serial select_top_m overloads for every shard count.
  const Allocation& select_top_m(const CandidateBatch& batch,
                                 const ScoreWeights& weights,
                                 std::size_t max_winners,
                                 const Penalties& penalties,
                                 RoundScratch& scratch) const override;

  /// Critical-value payments for scratch.allocation, written into
  /// scratch.payments (also returned). Requires select_top_m to have run on
  /// the same scratch/batch/weights/penalties — the merged survivor order
  /// and scores are reused, so no O(n) re-scan happens.
  const std::vector<double>& critical_payments(
      const CandidateBatch& batch, const ScoreWeights& weights,
      std::size_t max_winners, const Penalties& penalties,
      RoundScratch& scratch) const override;

  /// One full round: select + price. Equivalent to calling the two methods
  /// above in sequence; allocation lands in scratch.allocation, payments in
  /// scratch.payments. Zero heap allocations at steady state.
  void run_round(const CandidateBatch& batch, const ScoreWeights& weights,
                 std::size_t max_winners, const Penalties& penalties,
                 RoundScratch& scratch) const override;

  /// Mega-batch entry point: clears every market of the MarketBatch in one
  /// fork-join pass — MARKETS (not rows) are partitioned across the pool's
  /// lanes, each market running the serial select/merge/price math on its
  /// own arena span, so every market's slot is bit-identical to run_round
  /// on that market alone. Scoring goes through the SIMD kernels
  /// (util/simd.h), shared with the single-market path. validate() throws
  /// before any market is scored (`result` untouched); a per-market failure
  /// inside the lanes (engine invariant violation) is rethrown after the
  /// join. config.shards bounds the lane count (0 = auto by total rows).
  void run_rounds(const MarketBatch& batch, MarketBatchResult& result,
                  RoundScratch& scratch) const override;

 private:
  ShardedWdpConfig config_;
  sfl::util::ThreadPool* const pool_;  ///< null = util::shared_pool()
};

}  // namespace sfl::auction
