#include "auction/wdp_engine.h"

#include <algorithm>

namespace sfl::auction {

void WdpEngine::run_rounds(const MarketBatch& batch, MarketBatchResult& result,
                           RoundScratch& scratch) const {
  // Validation throws before any market is scored and before the result is
  // touched — exception-atomicity is part of the run_rounds contract.
  batch.validate();
  result.reset(batch);

  const std::span<const ClientId> ids = batch.ids();
  const std::span<const double> values = batch.values();
  const std::span<const double> bids = batch.bids();
  const std::span<const double> energy_costs = batch.energy_costs();

  CandidateBatch market_slate;
  Penalties market_penalties;
  // A mid-batch throw (an invariant failure in one market's round) must not
  // publish the markets already gathered: the arena is re-zeroed to its
  // reset layout before the exception escapes, so callers never observe a
  // half-written result.
  try {
    for (std::size_t k = 0; k < batch.market_count(); ++k) {
      const MarketView& view = batch.market(k);
      market_slate.clear();
      market_slate.reserve(view.count);
      for (std::size_t i = view.offset; i < view.offset + view.count; ++i) {
        market_slate.emplace(ids[i], values[i], bids[i], energy_costs[i]);
      }
      market_penalties.clear();
      if (const double* penalties = batch.market_penalties(k);
          penalties != nullptr) {
        market_penalties.assign(penalties, penalties + view.count);
      }
      run_round(market_slate, view.weights, view.max_winners, market_penalties,
                scratch);

      // allocation.selected is already market-local (indices into the
      // gathered slate) and ascending — exactly the slot layout.
      const Allocation& allocation = scratch.allocation;
      MarketBatchResult::Slot& slot = result.slot(k);
      const std::span<std::size_t> selected = result.selected_storage(k);
      const std::span<double> payments = result.payments_storage(k);
      slot.count = allocation.selected.size();
      slot.total_score = allocation.total_score;
      std::copy(allocation.selected.begin(), allocation.selected.end(),
                selected.begin());
      std::copy(scratch.payments.begin(), scratch.payments.end(),
                payments.begin());
    }
  } catch (...) {
    result.reset(batch);
    throw;
  }
}

}  // namespace sfl::auction
