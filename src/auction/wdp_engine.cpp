#include "auction/wdp_engine.h"

#include <algorithm>

#include "util/require.h"
#include "util/simd.h"

namespace sfl::auction {

namespace {

using sfl::util::check_invariant;

/// The cross-market exclusive clearing, serial reference shape: score every
/// market's span, sort ALL covered rows under the global greedy order
/// (score desc, ClientId asc, global row index asc — the index tie-break
/// encodes (market index, row) lexicographically because markets are
/// ordered and disjoint), then accept each row in turn iff its market has
/// winner capacity left AND its client has not won anywhere yet. Payments
/// are priced against the constrained outcome: market k's threshold is the
/// best non-selected score in k among rows whose client ends the batch
/// unassigned anywhere (clamped at 0) — every such "available loser" is
/// bounded by k's worst winner (it was passed over only for capacity or
/// score reasons), so the critical bid is always >= the winning bid.
///
/// ShardedWdp's fused override computes the identical sequence with the
/// per-market sort parallelized and the global order recovered by a k-way
/// cursor merge; the exclusivity property harness pins the two (and the
/// per-market-with-conflict-resolution reference) bit-for-bit.
void run_rounds_exclusive(const MarketBatch& batch, MarketBatchResult& result,
                          RoundScratch& scratch) {
  const std::size_t total = batch.total_rows();
  const std::size_t market_count = batch.market_count();
  const std::span<const ClientId> ids = batch.ids();
  const std::span<const double> values = batch.values();
  const std::span<const double> bids = batch.bids();

  scratch.scores.resize(total);
  scratch.order.clear();
  scratch.exclusive_market_of.resize(total);
  double* const scores = scratch.scores.data();

  // Score every market's span and gather the covered rows (view-mode
  // arenas may have rows outside every market; they take no part).
  for (std::size_t k = 0; k < market_count; ++k) {
    const MarketView& view = batch.market(k);
    if (view.count == 0) continue;
    sfl::util::simd::score_span(
        values.data() + view.offset, bids.data() + view.offset,
        batch.market_penalties(k), scores + view.offset, view.count,
        view.weights.value_weight, view.weights.bid_weight);
    for (std::size_t i = view.offset; i < view.offset + view.count; ++i) {
      scratch.exclusive_market_of[i] = k;
      scratch.order.push_back(i);
    }
  }

  // The global greedy order. All keys are distinct (final index tie-break),
  // so the sequence is a pure function of the batch.
  const auto better = [scores, ids](std::size_t a, std::size_t b) {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    if (ids[a] != ids[b]) return ids[a] < ids[b];
    return a < b;
  };
  std::sort(scratch.order.begin(), scratch.order.end(), better);

  // Assignment set keyed by rank in the sorted-unique client list.
  scratch.exclusive_clients.clear();
  for (const std::size_t row : scratch.order) {
    scratch.exclusive_clients.push_back(ids[row]);
  }
  std::sort(scratch.exclusive_clients.begin(), scratch.exclusive_clients.end());
  scratch.exclusive_clients.erase(
      std::unique(scratch.exclusive_clients.begin(),
                  scratch.exclusive_clients.end()),
      scratch.exclusive_clients.end());
  scratch.exclusive_assigned.assign(scratch.exclusive_clients.size(), 0);
  const auto rank_of = [&scratch](ClientId id) {
    return static_cast<std::size_t>(
        std::lower_bound(scratch.exclusive_clients.begin(),
                         scratch.exclusive_clients.end(), id) -
        scratch.exclusive_clients.begin());
  };

  // Greedy acceptance. total_score accumulates in acceptance order — the
  // FP addition order is part of the bit-exactness contract with the fused
  // merge.
  for (const std::size_t row : scratch.order) {
    if (scores[row] <= 0.0) break;  // sorted; the rest are <= 0 too
    const std::size_t k = scratch.exclusive_market_of[row];
    MarketBatchResult::Slot& slot = result.slot(k);
    // capacity == min(max_winners, count): the market's winner cap.
    if (slot.count >= slot.capacity) continue;
    const std::size_t rank = rank_of(ids[row]);
    if (scratch.exclusive_assigned[rank] != 0) continue;
    scratch.exclusive_assigned[rank] = 1;
    result.selected_storage(k)[slot.count++] = row;
    slot.total_score += scores[row];
  }

  // Thresholds + payments against the FINAL assignment (a row skipped for
  // a full market may have won elsewhere later, so this cannot interleave
  // with the greedy).
  for (std::size_t k = 0; k < market_count; ++k) {
    const MarketView& view = batch.market(k);
    MarketBatchResult::Slot& slot = result.slot(k);
    if (slot.count == 0) continue;
    const std::span<std::size_t> selected = result.selected_storage(k);
    const std::span<double> payments = result.payments_storage(k);
    std::sort(selected.begin(),
              selected.begin() + static_cast<std::ptrdiff_t>(slot.count));

    double threshold = 0.0;  // max() against 0 is the clamp
    for (std::size_t i = view.offset; i < view.offset + view.count; ++i) {
      if (scores[i] <= threshold) continue;
      if (scratch.exclusive_assigned[rank_of(ids[i])] != 0) continue;
      // Assigned covers this market's own winners, so any survivor here is
      // a true available loser.
      threshold = scores[i];
    }

    const double vw = view.weights.value_weight;
    const double bw = view.weights.bid_weight;
    const double* const penalties = batch.market_penalties(k);
    for (std::size_t w = 0; w < slot.count; ++w) {
      const std::size_t row = selected[w];
      const double penalty =
          penalties == nullptr ? 0.0 : penalties[row - view.offset];
      const double critical_bid = (vw * values[row] - penalty - threshold) / bw;
      check_invariant(critical_bid >= bids[row] - 1e-9,
                      "critical payment below the winning bid");
      payments[w] = std::max(critical_bid, bids[row]);
    }
    for (std::size_t w = 0; w < slot.count; ++w) selected[w] -= view.offset;
  }
}

}  // namespace

void WdpEngine::run_rounds(const MarketBatch& batch, MarketBatchResult& result,
                           RoundScratch& scratch) const {
  // Validation throws before any market is scored and before the result is
  // touched — exception-atomicity is part of the run_rounds contract.
  batch.validate();
  result.reset(batch);

  if (batch.exclusive()) {
    // Cross-market exclusivity is a batch-level constraint, not a
    // per-market round, so every engine (including the distributed
    // coordinator, which does not override run_rounds) clears it through
    // this serial greedy on the caller's thread.
    try {
      run_rounds_exclusive(batch, result, scratch);
    } catch (...) {
      result.reset(batch);
      throw;
    }
    return;
  }

  const std::span<const ClientId> ids = batch.ids();
  const std::span<const double> values = batch.values();
  const std::span<const double> bids = batch.bids();
  const std::span<const double> energy_costs = batch.energy_costs();

  CandidateBatch market_slate;
  Penalties market_penalties;
  // A mid-batch throw (an invariant failure in one market's round) must not
  // publish the markets already gathered: the arena is re-zeroed to its
  // reset layout before the exception escapes, so callers never observe a
  // half-written result.
  try {
    for (std::size_t k = 0; k < batch.market_count(); ++k) {
      const MarketView& view = batch.market(k);
      market_slate.clear();
      market_slate.reserve(view.count);
      for (std::size_t i = view.offset; i < view.offset + view.count; ++i) {
        market_slate.emplace(ids[i], values[i], bids[i], energy_costs[i]);
      }
      market_penalties.clear();
      if (const double* penalties = batch.market_penalties(k);
          penalties != nullptr) {
        market_penalties.assign(penalties, penalties + view.count);
      }
      run_round(market_slate, view.weights, view.max_winners, market_penalties,
                scratch);

      // allocation.selected is already market-local (indices into the
      // gathered slate) and ascending — exactly the slot layout.
      const Allocation& allocation = scratch.allocation;
      MarketBatchResult::Slot& slot = result.slot(k);
      const std::span<std::size_t> selected = result.selected_storage(k);
      const std::span<double> payments = result.payments_storage(k);
      slot.count = allocation.selected.size();
      slot.total_score = allocation.total_score;
      std::copy(allocation.selected.begin(), allocation.selected.end(),
                selected.begin());
      std::copy(scratch.payments.begin(), scratch.payments.end(),
                payments.begin());
    }
  } catch (...) {
    result.reset(batch);
    throw;
  }
}

}  // namespace sfl::auction
