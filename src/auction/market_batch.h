// MarketBatch: many independent market rounds packed into one SoA arena.
//
// Production traffic is thousands of concurrent SMALL markets, each clearing
// its own round with its own weights and penalties. Clearing them one
// engine call at a time pays the per-round fixed costs (validation, scratch
// setup, fork-join) per MARKET; MarketBatch amortizes them across the whole
// set: one contiguous ids/values/bids/energies block plus a per-market
// descriptor {offset, count, max_winners, weights, penalties}, cleared by
// ONE WdpEngine::run_rounds call that partitions markets across thread-pool
// lanes and scores each span with the SIMD kernels (util/simd.h).
//
// Two construction modes:
//   - append_market(CandidateBatch, ...): owning — rows are copied into the
//     batch's own arena (the service path: each market keeps its own
//     reusable CandidateBatch, appended per tick);
//   - bind_arena(CandidateBatch) + add_market_view(offset, count, ...):
//     zero-copy — every market is a sub-span of ONE external batch the
//     caller keeps alive (the mega-bench path: 100k markets over one block
//     without touching a byte).
// Penalties are always owned (a lazily zero-filled arena-aligned array), so
// callers may hand in short-lived penalty scratch.
//
// Exactness and isolation contract (pinned by tests/auction/
// market_batch_test.cpp and the property harness): run_rounds over a
// MarketBatch is bit-identical, market by market, to running each market
// through the per-market engine entry points; an empty or m >= n market
// affects only its own slot; and validate() — which every run_rounds
// implementation calls FIRST — throws std::invalid_argument on any
// malformed descriptor before a single market is scored, leaving the
// result untouched (exception-atomic).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "auction/candidate_batch.h"
#include "auction/types.h"

namespace sfl::auction {

/// One market's descriptor inside a MarketBatch.
struct MarketView {
  std::size_t offset = 0;       ///< first arena row
  std::size_t count = 0;        ///< rows in this market (0 is legal)
  std::size_t max_winners = 0;  ///< m (may exceed count)
  ScoreWeights weights{};
  /// False = this market's penalties are all zero (the penalty arena is not
  /// read for it, matching the empty-Penalties fast path bit for bit).
  bool has_penalties = false;
};

class MarketBatch {
 public:
  MarketBatch() = default;

  /// Forgets every market and any bound arena; owned capacity is kept.
  void clear() noexcept;
  void reserve(std::size_t markets, std::size_t rows);

  /// Owning mode: copies `batch` into the arena as the next market.
  /// `penalties` must be empty or one per row (copied; the caller's buffer
  /// may be reused immediately). Throws std::invalid_argument on a size
  /// mismatch or when an external arena is bound.
  void append_market(const CandidateBatch& batch, std::size_t max_winners,
                     const ScoreWeights& weights,
                     std::span<const double> penalties = {});

  /// Zero-copy mode: every subsequent add_market_view names a sub-span of
  /// `arena`, which the caller must keep alive and unmodified for this
  /// batch's lifetime. Throws std::invalid_argument when owned markets were
  /// already appended.
  void bind_arena(const CandidateBatch& arena);

  /// Adds the market [offset, offset + count) of the bound arena. Throws
  /// std::invalid_argument without a bound arena, on an out-of-range span,
  /// or on a penalties size mismatch.
  void add_market_view(std::size_t offset, std::size_t count,
                       std::size_t max_winners, const ScoreWeights& weights,
                       std::span<const double> penalties = {});

  /// Cross-market exclusivity (the multi-requester scenario): when set,
  /// run_rounds resolves every client to AT MOST ONE market per batch under
  /// the global greedy order (score desc, ClientId asc, market index asc,
  /// row asc), instead of clearing each market independently. Winners'
  /// critical payments are priced against the constrained outcome: market
  /// k's threshold is the best non-selected score in k among rows whose
  /// client ends the batch unassigned ANYWHERE (the best available loser),
  /// clamped at 0 — which degenerates to the per-market best-loser rule
  /// when client pools are disjoint. In exclusive mode a client with rows
  /// in several markets (or duplicate rows in one market) wins at most one
  /// row total. Cleared by clear().
  void set_exclusive(bool exclusive) noexcept { exclusive_ = exclusive; }
  [[nodiscard]] bool exclusive() const noexcept { return exclusive_; }

  [[nodiscard]] std::size_t market_count() const noexcept {
    return markets_.size();
  }
  /// Rows in the arena (the external batch's size in view mode).
  [[nodiscard]] std::size_t total_rows() const noexcept;
  [[nodiscard]] const MarketView& market(std::size_t k) const {
    return markets_[k];
  }
  /// Mutable descriptor access — for tests that corrupt a descriptor to pin
  /// the validate() error path; production callers never need it.
  [[nodiscard]] MarketView& market_mutable(std::size_t k) {
    return markets_[k];
  }

  [[nodiscard]] std::span<const ClientId> ids() const noexcept;
  [[nodiscard]] std::span<const double> values() const noexcept;
  [[nodiscard]] std::span<const double> bids() const noexcept;
  [[nodiscard]] std::span<const double> energy_costs() const noexcept;

  /// Market k's penalty rows (arena-aligned), or null when the market has
  /// none — the caller must then score with all-zero penalties.
  [[nodiscard]] const double* market_penalties(std::size_t k) const noexcept {
    return markets_[k].has_penalties ? penalties_.data() + markets_[k].offset
                                     : nullptr;
  }

  /// Full structural check, run by every run_rounds implementation BEFORE
  /// any market is scored: weights finite with bid_weight > 0 and
  /// value_weight >= 0, every span inside the arena, markets ordered and
  /// non-overlapping (they share one scores arena — an overlap would race),
  /// and the penalty arena covering every has_penalties market. Throws
  /// std::invalid_argument naming the offending market.
  void validate() const;

 private:
  [[nodiscard]] bool view_mode() const noexcept { return external_ != nullptr; }

  const CandidateBatch* external_ = nullptr;  ///< null = owning mode
  std::vector<ClientId> ids_;
  std::vector<double> values_;
  std::vector<double> bids_;
  std::vector<double> energy_costs_;
  /// Arena-aligned penalties, zero-filled lazily on the first market that
  /// actually carries any; stays empty (never allocated) otherwise.
  std::vector<double> penalties_;
  bool any_penalties_ = false;
  bool exclusive_ = false;
  std::vector<MarketView> markets_;
};

/// Per-market results of one run_rounds call: winners (market-LOCAL row
/// indices, ascending) and critical payments, in flat arenas laid out by
/// reset(). The engine writes each market's slot independently, so markets
/// on different lanes never contend.
class MarketBatchResult {
 public:
  struct Slot {
    std::size_t offset = 0;    ///< into the selected/payments arenas
    std::size_t capacity = 0;  ///< min(max_winners, count)
    std::size_t count = 0;     ///< winners actually selected
    double total_score = 0.0;
  };

  /// Lays out one slot per market of `batch` (prefix-sum of capacities) and
  /// zeroes counts/scores. Capacity is reused across calls.
  void reset(const MarketBatch& batch);

  [[nodiscard]] std::size_t market_count() const noexcept {
    return slots_.size();
  }
  /// Market k's winners as market-local row indices, ascending.
  [[nodiscard]] std::span<const std::size_t> selected(std::size_t k) const {
    const Slot& slot = slots_[k];
    return {selected_.data() + slot.offset, slot.count};
  }
  /// Market k's payments, aligned with selected(k).
  [[nodiscard]] std::span<const double> payments(std::size_t k) const {
    const Slot& slot = slots_[k];
    return {payments_.data() + slot.offset, slot.count};
  }
  [[nodiscard]] double total_score(std::size_t k) const {
    return slots_[k].total_score;
  }

  // Engine-facing mutable access (capacity-sized spans; the engine stamps
  // slot(k).count with how many it filled).
  [[nodiscard]] Slot& slot(std::size_t k) { return slots_[k]; }
  [[nodiscard]] std::span<std::size_t> selected_storage(std::size_t k) {
    const Slot& s = slots_[k];
    return {selected_.data() + s.offset, s.capacity};
  }
  [[nodiscard]] std::span<double> payments_storage(std::size_t k) {
    const Slot& s = slots_[k];
    return {payments_.data() + s.offset, s.capacity};
  }

 private:
  std::vector<Slot> slots_;
  std::vector<std::size_t> selected_;
  std::vector<double> payments_;
};

}  // namespace sfl::auction
