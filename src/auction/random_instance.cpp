#include "auction/random_instance.h"

#include "util/require.h"

namespace sfl::auction {

using sfl::util::require;

RandomInstance make_random_instance(const RandomInstanceSpec& spec,
                                    sfl::util::Rng& rng) {
  require(spec.num_candidates > 0, "instance needs at least one candidate");
  require(spec.value_lo >= 0.0 && spec.value_hi >= spec.value_lo,
          "invalid value range");
  require(spec.bid_lo >= 0.0 && spec.bid_hi >= spec.bid_lo, "invalid bid range");
  require(spec.penalty_hi >= 0.0, "penalty_hi must be >= 0");

  RandomInstance instance;
  instance.candidates.reserve(spec.num_candidates);
  for (std::size_t i = 0; i < spec.num_candidates; ++i) {
    Candidate c;
    c.id = i;
    c.value = rng.uniform(spec.value_lo, spec.value_hi);
    c.bid = rng.uniform(spec.bid_lo, spec.bid_hi);
    c.energy_cost = rng.uniform(0.5, 2.0);
    instance.candidates.push_back(c);
  }
  if (spec.penalty_hi > 0.0) {
    instance.penalties.reserve(spec.num_candidates);
    for (std::size_t i = 0; i < spec.num_candidates; ++i) {
      instance.penalties.push_back(rng.uniform(0.0, spec.penalty_hi));
    }
  }
  return instance;
}

ScoreWeights make_random_weights(sfl::util::Rng& rng) {
  ScoreWeights weights;
  weights.value_weight = rng.uniform(0.1, 10.0);
  weights.bid_weight = weights.value_weight + rng.uniform(0.0, 10.0);
  return weights;
}

}  // namespace sfl::auction
